//! Figure 2: impact of CAT-limited cache size and page size.
//!
//! A CAT partition whose *capacity* equals the working set still performs
//! far worse than the full cache with 4 KiB pages, because reduced
//! associativity turns the randomized virtual-to-physical mapping into
//! conflict misses. Huge pages fix it only while the working set fits one
//! page (Xeon-D's 2 MB case); the Xeon-E5 4.5 MB working set spans three
//! huge pages and still conflicts.

use llc_sim::{HierarchyConfig, PageSize, WayMask};
use workloads::Mlr;

use crate::experiments::common::{measure_single, MeasureSpec, MB};
use crate::report;

/// One machine's three bars.
#[derive(Debug, Clone, Copy)]
pub struct ConflictRow {
    /// Latency with a 2-way CAT partition, 4 KiB pages.
    pub cat_4k: f64,
    /// Latency with a 2-way CAT partition, 2 MiB huge pages.
    pub cat_huge: f64,
    /// Latency with the full cache, 4 KiB pages.
    pub full_4k: f64,
}

fn machine(cfg: HierarchyConfig, wss: u64, fast: bool) -> ConflictRow {
    let accesses = if fast { 100_000 } else { 1_500_000 };
    let two_ways = WayMask::from_way_range(0, 2);
    let full = WayMask::all(cfg.llc.ways);
    let run = |mask: WayMask, page: PageSize, seed: u64| {
        let mut mlr = Mlr::with_page_size(wss, page, seed);
        let spec = MeasureSpec {
            hier_cfg: cfg,
            mask,
            wss_bytes: wss,
            page_size: page,
            colors: None,
            warm_accesses: accesses,
            measured_accesses: accesses,
            seed,
        };
        measure_single(&spec, &mut mlr).0
    };
    ConflictRow {
        cat_4k: run(two_ways, PageSize::Small, 11).avg_latency,
        cat_huge: run(two_ways, PageSize::Huge, 12).avg_latency,
        full_4k: run(full, PageSize::Small, 13).avg_latency,
    }
}

/// Runs both machines and prints the bars.
pub fn run(fast: bool) -> (ConflictRow, ConflictRow) {
    report::section("Figure 2: Impact of CAT-limited cache size");
    // Xeon-D: 2 MB working set in a 2-way 2 MB partition; Xeon-E5: 4.5 MB
    // working set in a 2-way 4.5 MB partition. Both machines run in
    // parallel under the sweep runner.
    let machines = vec![
        (HierarchyConfig::xeon_d(), 2 * MB),
        (HierarchyConfig::default(), 4 * MB + MB / 2),
    ];
    let rows = crate::Runner::from_env().map(machines, |_, (cfg, wss)| machine(cfg, wss, fast));
    let (xeon_d, xeon_e5) = (rows[0], rows[1]);
    report::table(
        &[
            "machine",
            "CAT 2-way (4KB pages)",
            "CAT 2-way (2MB pages)",
            "full cache",
        ],
        &[
            vec![
                "Xeon-D (2MB WSS)".to_string(),
                format!("{:.1}", xeon_d.cat_4k),
                format!("{:.1}", xeon_d.cat_huge),
                format!("{:.1}", xeon_d.full_4k),
            ],
            vec![
                "Xeon-E5 (4.5MB WSS)".to_string(),
                format!("{:.1}", xeon_e5.cat_4k),
                format!("{:.1}", xeon_e5.cat_huge),
                format!("{:.1}", xeon_e5.full_4k),
            ],
        ],
    );
    report::say("(average data-access latency in cycles; capacity matches the working set in every CAT case)");
    (xeon_d, xeon_e5)
}
