//! Ablation: LLC replacement/insertion policy under an unmanaged shared
//! cache.
//!
//! The paper's premise is that *LRU* sharing lets a streaming neighbor
//! flush a victim's working set — which is why CAT isolation is needed at
//! all. Scan-resistant insertion (BIP, from the DIP work the paper cites
//! for cyclic access patterns) protects the victim in hardware instead;
//! this ablation quantifies how much of dCat's win such hardware would
//! erode.

use host::EngineConfig;
use llc_sim::ReplacementPolicy;
use workloads::{Mload, Mlr};

use crate::experiments::common::MB;
use crate::report;
use crate::scenario::{run_scenario, PolicyKind, VmPlan};

/// Victim results under one LLC policy.
#[derive(Debug, Clone)]
pub struct ReplacementRow {
    /// Policy label.
    pub label: &'static str,
    /// Victim steady IPC.
    pub ipc: f64,
    /// Victim steady data-access latency (cycles).
    pub latency: f64,
}

fn victim_stats(policy: ReplacementPolicy, fast: bool) -> (f64, f64) {
    let mut cfg = EngineConfig::xeon_e5_v4();
    cfg.cycles_per_epoch = if fast { 1_500_000 } else { 10_000_000 };
    cfg.socket.hierarchy.llc_policy = policy;
    // BIP's protection accumulates at ~1/32 of the victim's fills, so the
    // victim must re-touch its lines often relative to the run length;
    // the fast variant shrinks the working sets accordingly.
    let victim_wss = if fast { MB / 2 } else { 8 * MB };
    let noisy_wss = if fast { 20 * MB } else { 60 * MB };
    let plans = vec![
        VmPlan::always("mlr", 6, move |s| Box::new(Mlr::new(victim_wss, 31 + s))),
        VmPlan::always("noisy-1", 7, move |_| Box::new(Mload::new(noisy_wss))),
        VmPlan::always("noisy-2", 7, move |_| Box::new(Mload::new(noisy_wss))),
    ];
    let epochs = if fast { 30 } else { 36 };
    let r = run_scenario(PolicyKind::Shared, cfg, &plans, epochs);
    let steady = (epochs / 4) as usize;
    (r.steady_ipc(0, steady), r.steady_latency(0, steady))
}

/// Runs the sweep over the four policies.
pub fn run(fast: bool) -> Vec<ReplacementRow> {
    report::section("Ablation: LLC replacement policy (shared cache, MLR-8MB vs 2x MLOAD-60MB)");
    let policies = [
        ("LRU", ReplacementPolicy::Lru),
        ("FIFO", ReplacementPolicy::Fifo),
        ("Random", ReplacementPolicy::Random),
        ("BIP (1/32)", ReplacementPolicy::bip()),
    ];
    let rows = crate::Runner::from_env().map(policies.to_vec(), |_, (label, p)| {
        let (ipc, latency) = victim_stats(p, fast);
        ReplacementRow {
            label,
            ipc,
            latency,
        }
    });
    let printed: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.label.to_string(),
                format!("{:.4}", r.ipc),
                format!("{:.1}", r.latency),
            ]
        })
        .collect();
    report::table(
        &["LLC policy", "victim IPC", "victim latency (cyc)"],
        &printed,
    );
    report::say("(scan-resistant insertion protects the victim without any partitioning,");
    report::say(" at the cost of hardware support no shipping LLC provides per-tenant)");
    rows
}
