//! Figure 12: the performance table accelerates a recurring phase.
//!
//! MLR-8MB runs, stops, and later starts again. On the first run dCat
//! discovers the preferred allocation one way per decision; on the second
//! run the archived per-phase performance table lets it jump (nearly)
//! straight there.

use workloads::{Lookbusy, Mlr};

use crate::experiments::common::{paper_dcat, paper_engine, MB};
use crate::report;
use crate::scenario::{run_scenario, PolicyKind, ScheduleItem, VmPlan};

/// The figure's timeline plus the derived convergence epochs.
#[derive(Debug, Clone)]
pub struct PerfTableReuse {
    /// Ways of the MLR VM per epoch.
    pub ways_series: Vec<u32>,
    /// Epochs from first start to peak allocation.
    pub first_run_epochs: u64,
    /// Epochs from restart to peak allocation.
    pub second_run_epochs: u64,
    /// Epoch indices: (first_start, first_stop, second_start).
    pub marks: (u64, u64, u64),
}

/// Runs the run/stop/run schedule (optionally with table reuse disabled,
/// for the ablation bench).
pub fn run_with_reuse(fast: bool, enable_reuse: bool) -> PerfTableReuse {
    let (start1, stop1, start2, total) = if fast {
        (1, 14, 17, 32)
    } else {
        (2, 26, 31, 60)
    };
    let mut plans = vec![VmPlan::scheduled(
        "mlr",
        3,
        vec![
            ScheduleItem::window(start1, stop1),
            ScheduleItem::window(start2, total),
        ],
        |_| Box::new(Mlr::new(8 * MB, 90)),
    )];
    for i in 0..5 {
        plans.push(VmPlan::always(format!("lookbusy-{i}"), 3, |_| {
            Box::new(Lookbusy::new())
        }));
    }
    let mut cfg = paper_dcat();
    cfg.enable_perf_table_reuse = enable_reuse;
    let r = run_scenario(PolicyKind::Dcat(cfg), paper_engine(fast), &plans, total);
    let ways = r.ways_series(0);

    let peak_after = |from: u64, to: u64| -> u64 {
        let window = &ways[from as usize..to as usize];
        let peak = window.iter().copied().max().unwrap_or(0);
        window.iter().position(|&w| w == peak).unwrap_or(0) as u64
    };
    PerfTableReuse {
        first_run_epochs: peak_after(start1, stop1),
        second_run_epochs: peak_after(start2, total),
        ways_series: ways,
        marks: (start1, stop1, start2),
    }
}

/// Runs the experiment and prints the timeline.
pub fn run(fast: bool) -> PerfTableReuse {
    report::section("Figure 12: performance-table reuse on a recurring phase (MLR-8MB)");
    let result = run_with_reuse(fast, true);
    let series: Vec<f64> = result.ways_series.iter().map(|&w| w as f64).collect();
    report::ascii_series("MLR VM ways over time", &series, 8);
    report::say(format!(
        "ways: {}",
        result
            .ways_series
            .iter()
            .map(|w| w.to_string())
            .collect::<Vec<_>>()
            .join(",")
    ));
    report::say(format!(
        "first run reached its peak after {} epochs; second run after {} epochs",
        result.first_run_epochs, result.second_run_epochs
    ));
    result
}
