//! Figure 8: sensitivity to the cache-miss threshold.
//!
//! MLR-8MB in a VM with a 2-way baseline; sweeping `llc_miss_rate_thr`.
//! A smaller threshold chases misses harder: more ways granted, lower
//! latency, higher pressure on the free pool. The paper picks 3%.

use dcat::DcatConfig;
use workloads::{Lookbusy, Mlr};

use crate::experiments::common::{paper_engine, MB};
use crate::report;
use crate::scenario::{run_scenario, PolicyKind, VmPlan};

/// One sweep point.
#[derive(Debug, Clone, Copy)]
pub struct MissThrPoint {
    /// The threshold value.
    pub threshold: f64,
    /// Ways held once the allocation stabilizes.
    pub ways: u32,
    /// Steady-state average data-access latency (cycles).
    pub latency: f64,
}

/// Runs the sweep.
pub fn run(fast: bool) -> Vec<MissThrPoint> {
    report::section("Figure 8: impact of cache miss threshold (MLR-8MB, 2-way baseline)");
    let thresholds: &[f64] = if fast {
        &[0.01, 0.10]
    } else {
        &[0.01, 0.03, 0.05, 0.10, 0.20]
    };
    let epochs = if fast { 14 } else { 40 };
    let points = crate::Runner::from_env().map(thresholds.to_vec(), |_, thr| {
        let cfg = DcatConfig {
            llc_miss_rate_thr: thr,
            // Keep the donor ("no misses") threshold proportionally below
            // the growth threshold, as the two bound the same quantity.
            donor_miss_rate_thr: thr / 6.0,
            ..DcatConfig::default()
        };
        let mut plans = vec![VmPlan::always("mlr", 2, |s| {
            Box::new(Mlr::new(8 * MB, 50 + s))
        })];
        for i in 0..5 {
            plans.push(VmPlan::always(format!("lookbusy-{i}"), 2, |_| {
                Box::new(Lookbusy::new())
            }));
        }
        let r = run_scenario(PolicyKind::Dcat(cfg), paper_engine(fast), &plans, epochs);
        MissThrPoint {
            threshold: thr,
            ways: *r.ways_series(0).last().expect("epochs ran"),
            latency: r.steady_latency(0, (epochs / 4) as usize),
        }
    });
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{:.0}%", p.threshold * 100.0),
                p.ways.to_string(),
                format!("{:.1}", p.latency),
            ]
        })
        .collect();
    report::table(
        &[
            "llc_miss_rate_thr",
            "allocated ways",
            "avg latency (cycles)",
        ],
        &rows,
    );
    report::say("(smaller threshold -> more ways and better latency, at higher pool pressure)");
    points
}
