//! One module per reproduced table/figure. Each exposes `run(fast)`;
//! the `fast` flag shrinks epoch counts and cycle budgets so integration
//! tests finish quickly, while the binaries run the full-size versions.

pub mod ablate_replacement;
pub mod common;
pub mod exp_coloring;
pub mod fault_sweep;
pub mod fig01_interference;
pub mod fig02_conflict_latency;
pub mod fig03_set_histogram;
pub mod fig05_phase_metric;
pub mod fig07_lifecycle;
pub mod fig08_miss_threshold;
pub mod fig09_ipc_threshold;
pub mod fig10_dynamic_alloc;
pub mod fig11_latency_norm;
pub mod fig12_perf_table_reuse;
pub mod fig13_streaming;
pub mod fig14_two_receivers;
pub mod fig15_mixed;
pub mod fig17_spec2006;
pub mod fleet_churn;
pub mod fleet_scale;
pub mod tab_services;

/// One entry of the experiment suite: a stable name and a unit-returning
/// `run(fast)` wrapper, so `all_experiments` can fan the whole suite out
/// through [`crate::Runner`].
#[derive(Clone, Copy)]
pub struct Experiment {
    /// Stable identifier (matches the binary name where one exists).
    pub name: &'static str,
    /// Runs the experiment, printing its report through [`crate::report`].
    pub run: fn(bool),
}

/// Every figure/table reproduction, in the paper's presentation order.
pub fn registry() -> Vec<Experiment> {
    // Discards each module's structured return value: the suite runner
    // only needs the printed report.
    vec![
        Experiment {
            name: "fig01_interference",
            run: |fast| {
                fig01_interference::run(fast);
            },
        },
        Experiment {
            name: "fig02_conflict_latency",
            run: |fast| {
                fig02_conflict_latency::run(fast);
            },
        },
        Experiment {
            name: "fig03_set_histogram",
            run: |fast| {
                fig03_set_histogram::run(fast);
            },
        },
        Experiment {
            name: "fig05_phase_metric",
            run: |fast| {
                fig05_phase_metric::run(fast);
            },
        },
        Experiment {
            name: "fig07_lifecycle",
            run: |fast| {
                fig07_lifecycle::run(fast);
            },
        },
        Experiment {
            name: "fig08_miss_threshold",
            run: |fast| {
                fig08_miss_threshold::run(fast);
            },
        },
        Experiment {
            name: "fig09_ipc_threshold",
            run: |fast| {
                fig09_ipc_threshold::run(fast);
            },
        },
        Experiment {
            name: "fig10_dynamic_alloc",
            run: |fast| {
                fig10_dynamic_alloc::run(fast);
            },
        },
        Experiment {
            name: "fig11_latency_norm",
            run: |fast| {
                fig11_latency_norm::run(fast);
            },
        },
        Experiment {
            name: "fig12_perf_table_reuse",
            run: |fast| {
                fig12_perf_table_reuse::run(fast);
            },
        },
        Experiment {
            name: "fig13_streaming",
            run: |fast| {
                fig13_streaming::run(fast);
            },
        },
        Experiment {
            name: "fig14_two_receivers",
            run: |fast| {
                fig14_two_receivers::run(fast);
            },
        },
        Experiment {
            name: "fig15_mixed",
            run: |fast| {
                fig15_mixed::run(fast);
            },
        },
        Experiment {
            name: "fig17_spec2006",
            run: |fast| {
                fig17_spec2006::run(fast);
            },
        },
        Experiment {
            name: "tab_services",
            run: |fast| {
                tab_services::run(fast);
            },
        },
        Experiment {
            name: "ablate_replacement",
            run: |fast| {
                ablate_replacement::run(fast);
            },
        },
        Experiment {
            name: "exp_coloring",
            run: |fast| {
                exp_coloring::run(fast);
            },
        },
        Experiment {
            name: "fault_sweep",
            run: |fast| {
                fault_sweep::run(fast);
            },
        },
        Experiment {
            name: "fleet_scale",
            run: |fast| {
                if let Err(e) = fleet_scale::run(fast) {
                    panic!("fleet_scale aborted: {e} (severity {:?})", e.severity());
                }
            },
        },
        Experiment {
            name: "fleet_churn",
            run: |fast| {
                if let Err(e) = fleet_churn::run(fast) {
                    panic!("fleet_churn aborted: {e} (severity {:?})", e.severity());
                }
            },
        },
    ]
}
