//! One module per reproduced table/figure. Each exposes `run(fast)`;
//! the `fast` flag shrinks epoch counts and cycle budgets so integration
//! tests finish quickly, while the binaries run the full-size versions.

pub mod ablate_replacement;
pub mod common;
pub mod exp_coloring;
pub mod fig01_interference;
pub mod fig02_conflict_latency;
pub mod fig03_set_histogram;
pub mod fig05_phase_metric;
pub mod fig07_lifecycle;
pub mod fig08_miss_threshold;
pub mod fig09_ipc_threshold;
pub mod fig10_dynamic_alloc;
pub mod fig11_latency_norm;
pub mod fig12_perf_table_reuse;
pub mod fig13_streaming;
pub mod fig14_two_receivers;
pub mod fig15_mixed;
pub mod fig17_spec2006;
pub mod tab_services;
