//! Figure 13: a streaming workload is detected and defunded.
//!
//! MLOAD-60MB (cyclic scan, no reuse) in a 3-way-baseline VM. dCat grows
//! it like any Unknown workload, sees zero IPC improvement, declares it
//! Streaming when the allocation reaches three times the baseline, and
//! drops it to one way — returning the capacity to the pool.

use workloads::{Lookbusy, Mload};

use crate::experiments::common::{paper_dcat, paper_engine, MB};
use crate::report;
use crate::scenario::{run_scenario, PolicyKind, VmPlan};

/// The timeline plus derived checkpoints.
#[derive(Debug, Clone)]
pub struct StreamingRow {
    /// Ways of the MLOAD VM per epoch.
    pub ways_series: Vec<u32>,
    /// Normalized IPC per epoch.
    pub norm_ipc_series: Vec<f64>,
    /// Peak ways reached during discovery.
    pub peak_ways: u32,
    /// Final ways (should be the 1-way minimum).
    pub final_ways: u32,
}

/// Runs the scenario and returns the full record — the golden
/// decision-trace tests snapshot this.
pub fn run_result(fast: bool) -> crate::RunResult {
    let epochs = if fast { 20 } else { 40 };
    let mut plans = vec![VmPlan::always("mload", 3, |_| {
        Box::new(Mload::new(60 * MB))
    })];
    for i in 0..5 {
        plans.push(VmPlan::always(format!("lookbusy-{i}"), 3, |_| {
            Box::new(Lookbusy::new())
        }));
    }
    run_scenario(
        PolicyKind::Dcat(paper_dcat()),
        paper_engine(fast),
        &plans,
        epochs,
    )
}

/// Runs the scenario.
pub fn run(fast: bool) -> StreamingRow {
    report::section("Figure 13: cache-way allocation and normalized IPC for MLOAD-60MB");
    let r = run_result(fast);
    let ways = r.ways_series(0);
    let row = StreamingRow {
        peak_ways: ways.iter().copied().max().unwrap_or(0),
        final_ways: *ways.last().expect("ran"),
        norm_ipc_series: r
            .reports
            .iter()
            .map(|e| e[0].norm_ipc.unwrap_or(0.0))
            .collect(),
        ways_series: ways,
    };
    let series: Vec<f64> = row.ways_series.iter().map(|&w| w as f64).collect();
    report::ascii_series("MLOAD VM ways over time", &series, 8);
    report::say(format!(
        "ways: {}",
        row.ways_series
            .iter()
            .map(|w| w.to_string())
            .collect::<Vec<_>>()
            .join(",")
    ));
    report::say(format!(
        "peak {} ways (streaming cap = 3x baseline = 9), final {} way(s)",
        row.peak_ways, row.final_ways
    ));
    row
}
