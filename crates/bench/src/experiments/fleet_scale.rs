//! Fleet scale: cluster policies compared at increasing tenant counts.
//!
//! The dCat paper stops at one socket; an operator's question is what a
//! per-host cache policy does to a *fleet* — throughput, fairness
//! between tenants, and COS pressure (dCat wants one COS per domain;
//! LFOC and Memshare cluster tenants onto a handful). This experiment
//! runs identical tenant populations (same lifecycle traces, same
//! diurnal load) under all four [`FleetPolicy`] variants at 100, 1 000,
//! and 10 000 tenants and reports per-policy totals, Jain fairness over
//! per-tenant instructions, and mean distinct-COS per host.
//!
//! Full-fidelity 10 000-tenant runs simulate every LLC set of 834 hosts
//! — pass `--sample-sets 8` to run them in minutes; the sampled run is
//! still byte-identical at any `--jobs` width.

use crate::fleet::{run_fleet, FleetConfig, FleetPolicy};
use crate::report;

/// One policy × fleet-size cell of the comparison.
#[derive(Debug, Clone)]
pub struct FleetScaleRow {
    /// Policy label.
    pub policy: &'static str,
    /// Fleet size.
    pub tenants: u32,
    /// Total requests completed.
    pub requests: u64,
    /// Total instructions retired.
    pub instructions: u64,
    /// Run-wide LLC miss rate.
    pub miss_rate: f64,
    /// Jain fairness over per-tenant lifetime instructions.
    pub jain: f64,
    /// Mean distinct COS per host-epoch.
    pub mean_cos: f64,
}

/// Runs the standard ladder: a small smoke in fast mode, the paper-style
/// 100/1 000/10 000 ladder otherwise.
///
/// # Errors
///
/// Propagates the [`resctrl::ResctrlError`] of the first fleet run that
/// fails, so the binary classifies it at the exit boundary.
pub fn run(fast: bool) -> Result<Vec<FleetScaleRow>, resctrl::ResctrlError> {
    let ladder: &[u32] = if fast { &[48] } else { &[100, 1_000, 10_000] };
    run_at(ladder, fast)
}

/// Runs the comparison at explicit fleet sizes (the `--tenants N` path
/// of the binary).
///
/// # Errors
///
/// Propagates the [`resctrl::ResctrlError`] of the first fleet run that
/// fails.
pub fn run_at(
    tenant_counts: &[u32],
    fast: bool,
) -> Result<Vec<FleetScaleRow>, resctrl::ResctrlError> {
    report::section("Fleet scale: cluster cache policies at increasing tenant counts");
    let mut rows = Vec::new();
    // Policies run serially: run_fleet fans its hosts over the worker
    // pool internally, so the parallelism budget is already spent.
    for &tenants in tenant_counts {
        let cfg = FleetConfig::new(tenants, fast);
        for policy in FleetPolicy::ALL {
            let r = run_fleet(policy, &cfg)?;
            rows.push(FleetScaleRow {
                policy: r.policy,
                tenants,
                requests: r.total_requests(),
                instructions: r.total_instructions(),
                miss_rate: r.miss_rate(),
                jain: r.jain_fairness(),
                mean_cos: r.mean_cos_used(),
            });
        }
    }
    report::table(
        &[
            "tenants", "policy", "requests", "Mins", "miss%", "jain", "cos/host",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.tenants.to_string(),
                    r.policy.to_string(),
                    r.requests.to_string(),
                    format!("{:.1}", r.instructions as f64 / 1e6),
                    format!("{:.2}", r.miss_rate * 100.0),
                    format!("{:.4}", r.jain),
                    format!("{:.2}", r.mean_cos),
                ]
            })
            .collect::<Vec<_>>(),
    );
    Ok(rows)
}
