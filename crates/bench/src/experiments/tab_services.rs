//! Tables 4–6: Redis, PostgreSQL, and Elasticsearch under the three
//! policies.
//!
//! One service VM (4-way baseline) against two MLOAD-60MB and two lookbusy
//! VMs, matching the paper's setup. Throughput is requests per simulated
//! second; latency is the per-request mean (Tables 4–5) plus the 99th
//! percentile (Table 6). Paper results: Redis +57.6% over shared / +26.6%
//! over static; PostgreSQL +5.7% TPS over shared and −10.7% latency vs
//! static; Elasticsearch ~+10% mean and +11.6% p99 over both.

use workloads::{AccessStream, ElasticsearchModel, Lookbusy, Mload, PostgresModel, RedisModel};

use crate::experiments::common::{paper_dcat, paper_engine, MB};
use crate::report;
use crate::scenario::{run_scenario, PolicyKind, VmPlan};

/// Which service a run models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Service {
    /// Table 4: Redis GETs (Memtier).
    Redis,
    /// Table 5: PostgreSQL SELECTs (pgbench).
    Postgres,
    /// Table 6: Elasticsearch reads (YCSB workload C).
    Elasticsearch,
}

impl Service {
    fn label(self) -> &'static str {
        match self {
            Service::Redis => "Redis (Table 4)",
            Service::Postgres => "PostgreSQL (Table 5)",
            Service::Elasticsearch => "Elasticsearch (Table 6)",
        }
    }

    fn stream(self, fast: bool, seed: u64) -> Box<dyn AccessStream> {
        match self {
            // Fast mode shrinks the datasets so tests stay quick; full
            // mode uses the paper's sizes.
            Service::Redis => {
                if fast {
                    Box::new(RedisModel::new(100_000, 128, 0.99, seed))
                } else {
                    Box::new(RedisModel::paper_default(seed))
                }
            }
            Service::Postgres => {
                if fast {
                    Box::new(PostgresModel::new(500_000, seed))
                } else {
                    Box::new(PostgresModel::paper_default(seed))
                }
            }
            Service::Elasticsearch => {
                if fast {
                    Box::new(ElasticsearchModel::new(20_000, 1024, seed))
                } else {
                    Box::new(ElasticsearchModel::paper_default(seed))
                }
            }
        }
    }
}

/// Measurements for one (service, policy) pair.
#[derive(Debug, Clone, Copy)]
pub struct ServiceRun {
    /// Requests completed per million simulated cycles.
    pub throughput: f64,
    /// Mean request *service* latency in cycles.
    pub mean_latency: f64,
    /// 99th-percentile service latency in cycles.
    pub p99_latency: f64,
    /// Mean client-observed latency under load (see [`queueing`]).
    pub queued_mean: f64,
    /// 99th-percentile client-observed latency under load.
    pub queued_p99: f64,
}

/// Client-observed latency under a fixed offered load.
///
/// The paper measures latency from the client side while the server is
/// saturated by Memtier/pgbench/YCSB; that latency includes queueing,
/// which amplifies throughput differences into tail-latency differences.
/// The simulator produces pure service times, so the client view is
/// derived with an M/M/1 sojourn model at a fixed offered load: the same
/// arrival rate for every policy (70% of the shared-cache policy's
/// capacity), with `W = 1 / (mu - lambda)` and an exponential tail
/// (`p99 = W * ln 100`).
pub mod queueing {
    /// Fraction of the shared policy's capacity used as the offered load.
    pub const OFFERED_LOAD: f64 = 0.7;

    /// Mean sojourn time for service rate `mu` and arrival rate `lambda`,
    /// both in requests per cycle. Returns `f64::INFINITY` when the
    /// system is overloaded.
    pub fn mean_sojourn(mu: f64, lambda: f64) -> f64 {
        if mu <= lambda {
            f64::INFINITY
        } else {
            1.0 / (mu - lambda)
        }
    }

    /// 99th percentile of the (exponential) M/M/1 sojourn distribution.
    pub fn p99_sojourn(mu: f64, lambda: f64) -> f64 {
        mean_sojourn(mu, lambda) * 100f64.ln()
    }
}

/// One service's three policy runs.
#[derive(Debug, Clone)]
pub struct ServiceTable {
    /// Which service.
    pub service: Service,
    /// Shared-cache measurements.
    pub shared: ServiceRun,
    /// Static-CAT measurements.
    pub static_cat: ServiceRun,
    /// dCat measurements.
    pub dcat: ServiceRun,
}

fn measure(service: Service, policy: PolicyKind, fast: bool) -> ServiceRun {
    let epochs = if fast { 12 } else { 36 };
    let cfg = paper_engine(fast);
    let plans = vec![
        VmPlan::always("service", 4, move |s| service.stream(fast, 700 + s)),
        VmPlan::always("mload-1", 4, |_| Box::new(Mload::new(60 * MB))),
        VmPlan::always("mload-2", 4, |_| Box::new(Mload::new(60 * MB))),
        VmPlan::always("lookbusy-1", 4, |_| Box::new(Lookbusy::new())),
        VmPlan::always("lookbusy-2", 4, |_| Box::new(Lookbusy::new())),
    ];
    let r = run_scenario(policy, cfg, &plans, epochs);
    // Steady state: drop the first half (warm-up + discovery).
    let half = (epochs / 2) as usize;
    let requests: u64 = r.epochs[half..]
        .iter()
        .map(|e| e[0].requests_completed)
        .sum();
    let cycles: u64 = r.epochs[half..].iter().map(|e| e[0].cycles.max(1)).sum();
    // The latency samples accumulate over the whole run; take the tail
    // half as steady state.
    let lats = &r.request_latencies[0];
    let steady_lats = &lats[lats.len() / 2..];
    ServiceRun {
        throughput: requests as f64 / (cycles as f64 / 1.0e6),
        mean_latency: report::mean(steady_lats),
        p99_latency: if steady_lats.is_empty() {
            0.0
        } else {
            report::percentile(steady_lats, 99.0)
        },
        queued_mean: 0.0,
        queued_p99: 0.0,
    }
}

/// Fills in the client-observed latencies at a fixed offered load (70% of
/// the shared policy's capacity).
fn apply_queueing(table: &mut ServiceTable) {
    let lambda = queueing::OFFERED_LOAD * table.shared.throughput / 1.0e6;
    for run in [&mut table.shared, &mut table.static_cat, &mut table.dcat] {
        let mu = run.throughput / 1.0e6;
        run.queued_mean = queueing::mean_sojourn(mu, lambda);
        run.queued_p99 = queueing::p99_sojourn(mu, lambda);
    }
}

/// Runs one service under all three policies and prints its table.
pub fn run_service(service: Service, fast: bool) -> ServiceTable {
    report::section(service.label());
    let policies = vec![
        PolicyKind::Shared,
        PolicyKind::StaticCat,
        PolicyKind::Dcat(paper_dcat()),
    ];
    let runs = crate::Runner::from_env().map(policies, |_, policy| measure(service, policy, fast));
    let mut t = ServiceTable {
        service,
        shared: runs[0],
        static_cat: runs[1],
        dcat: runs[2],
    };
    apply_queueing(&mut t);
    let rows: Vec<Vec<String>> = [
        ("shared", t.shared),
        ("static CAT", t.static_cat),
        ("dCat", t.dcat),
    ]
    .iter()
    .map(|(name, r)| {
        vec![
            name.to_string(),
            format!("{:.1}", r.throughput),
            format!("{:.0}", r.mean_latency),
            format!("{:.0}", r.p99_latency),
            format!("{:.0}", r.queued_mean),
            format!("{:.0}", r.queued_p99),
        ]
    })
    .collect();
    report::table(
        &[
            "policy",
            "req / Mcycle",
            "svc mean (cyc)",
            "svc p99 (cyc)",
            "client mean (cyc)",
            "client p99 (cyc)",
        ],
        &rows,
    );
    report::say(format!(
        "dCat throughput: {} vs shared, {} vs static; client p99: {} vs static",
        report::pct(t.dcat.throughput / t.shared.throughput - 1.0),
        report::pct(t.dcat.throughput / t.static_cat.throughput - 1.0),
        report::pct(t.dcat.queued_p99 / t.static_cat.queued_p99 - 1.0),
    ));
    t
}

/// Runs all three services.
pub fn run(fast: bool) -> Vec<ServiceTable> {
    let services = vec![Service::Redis, Service::Postgres, Service::Elasticsearch];
    crate::Runner::from_env().map(services, |_, service| run_service(service, fast))
}

/// The paper's multi-instance variant: three PostgreSQL VMs next to the
/// same adversaries ("we observed the similar improvement with dCat").
/// Returns per-instance dCat/static throughput ratios.
pub fn run_postgres_multi(fast: bool) -> Vec<f64> {
    report::section("Table 5 (variant): three PostgreSQL instances");
    let epochs = if fast { 12 } else { 30 };
    let cfg = paper_engine(fast);
    let build = || {
        vec![
            VmPlan::always("pg-1", 3, move |s| Service::Postgres.stream(fast, 810 + s)),
            VmPlan::always("pg-2", 3, move |s| Service::Postgres.stream(fast, 820 + s)),
            VmPlan::always("pg-3", 3, move |s| Service::Postgres.stream(fast, 830 + s)),
            VmPlan::always("mload", 4, |_| Box::new(Mload::new(60 * MB))),
            VmPlan::always("lookbusy", 3, |_| Box::new(Lookbusy::new())),
        ]
    };
    let policies = vec![PolicyKind::StaticCat, PolicyKind::Dcat(paper_dcat())];
    let mut runs = crate::Runner::from_env().map(policies, |_, policy| {
        run_scenario(policy, cfg, &build(), epochs)
    });
    let dcat = runs.pop().expect("two runs");
    let stat = runs.pop().expect("two runs");
    let half = (epochs / 2) as usize;
    let throughput = |r: &crate::scenario::RunResult, vm: usize| {
        let requests: u64 = r.epochs[half..]
            .iter()
            .map(|e| e[vm].requests_completed)
            .sum();
        let cycles: u64 = r.epochs[half..].iter().map(|e| e[vm].cycles.max(1)).sum();
        requests as f64 / (cycles as f64 / 1.0e6)
    };
    let mut ratios = Vec::new();
    let mut rows = Vec::new();
    for vm in 0..3 {
        let ratio = throughput(&dcat, vm) / throughput(&stat, vm).max(1e-9);
        rows.push(vec![
            format!("pg-{}", vm + 1),
            format!("{:.1}", throughput(&stat, vm)),
            format!("{:.1}", throughput(&dcat, vm)),
            report::pct(ratio - 1.0),
        ]);
        ratios.push(ratio);
    }
    report::table(
        &[
            "instance",
            "static req/Mcyc",
            "dCat req/Mcyc",
            "dCat vs static",
        ],
        &rows,
    );
    ratios
}
