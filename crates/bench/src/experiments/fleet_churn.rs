//! Fleet churn: policies under tenant arrival/departure pressure.
//!
//! Steady fleets mostly measure steady-state allocation; real IaaS
//! tenants come and go. Churn mode spreads arrivals across the run and
//! shortens lifetimes so slots turn over, which stresses exactly the
//! machinery the policies differ on: dCat re-baselines each newcomer
//! through Unknown, LFOC re-clusters it, Memshare re-opens its ledger.
//! The report shows the active-tenant curve and how each policy's
//! throughput and COS pressure hold up while the population shifts.

use crate::fleet::{run_fleet, FleetConfig, FleetPolicy};
use crate::report;

/// One policy's summary under churn.
#[derive(Debug, Clone)]
pub struct FleetChurnRow {
    /// Policy label.
    pub policy: &'static str,
    /// Total requests completed.
    pub requests: u64,
    /// Jain fairness over per-tenant lifetime instructions.
    pub jain: f64,
    /// Mean distinct COS per host-epoch.
    pub mean_cos: f64,
    /// Active tenants per epoch (identical across policies by
    /// construction: lifecycle traces do not depend on the policy).
    pub active_series: Vec<u32>,
}

/// Runs the churn comparison; fast mode shrinks the fleet.
///
/// # Errors
///
/// Propagates the [`resctrl::ResctrlError`] of the first fleet run that
/// fails, so the binary classifies it at the exit boundary.
pub fn run(fast: bool) -> Result<Vec<FleetChurnRow>, resctrl::ResctrlError> {
    run_at(if fast { 48 } else { 1_000 }, fast)
}

/// Runs the churn comparison at an explicit fleet size.
///
/// # Errors
///
/// Propagates the [`resctrl::ResctrlError`] of the first fleet run that
/// fails.
pub fn run_at(tenants: u32, fast: bool) -> Result<Vec<FleetChurnRow>, resctrl::ResctrlError> {
    report::section("Fleet churn: cluster cache policies under tenant turnover");
    let mut cfg = FleetConfig::new(tenants, fast);
    cfg.churn = true;
    let mut rows = Vec::new();
    for policy in FleetPolicy::ALL {
        let r = run_fleet(policy, &cfg)?;
        rows.push(FleetChurnRow {
            policy: r.policy,
            requests: r.total_requests(),
            jain: r.jain_fairness(),
            mean_cos: r.mean_cos_used(),
            active_series: r.rows.iter().map(|e| e.active).collect(),
        });
    }
    if let Some(first) = rows.first() {
        let series: Vec<f64> = first.active_series.iter().map(|&a| f64::from(a)).collect();
        report::ascii_series("active tenants over time", &series, 6);
    }
    report::table(
        &["policy", "requests", "jain", "cos/host"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.policy.to_string(),
                    r.requests.to_string(),
                    format!("{:.4}", r.jain),
                    format!("{:.2}", r.mean_cos),
                ]
            })
            .collect::<Vec<_>>(),
    );
    Ok(rows)
}
