//! Extension experiment: CAT way-partitioning vs. OS page coloring.
//!
//! The paper's Section 2.2 dismisses page coloring for *dynamic* use
//! (re-coloring copies pages), but its Figure-2 conflict-miss analysis
//! begs the comparison: at equal capacity, coloring restricts *sets* and
//! keeps the full associativity, so it should not suffer CAT's conflict
//! misses at all. This experiment quantifies that trade-off on the
//! Figure-2 methodology: MLR with a working set equal to the partition,
//! under (a) CAT with 2 ways, (b) coloring with the same capacity, and
//! (c) the full cache.

use llc_sim::{ColorSet, HierarchyConfig, PageSize, WayMask};
use workloads::Mlr;

use crate::experiments::common::{measure_single, MeasureSpec, MB};
use crate::report;

/// Latencies (cycles) for one machine.
#[derive(Debug, Clone, Copy)]
pub struct ColoringRow {
    /// CAT partition of 2 ways (capacity = working set).
    pub cat_2way: f64,
    /// Page coloring granting the same capacity (full associativity).
    pub coloring: f64,
    /// Full cache.
    pub full: f64,
}

fn machine(cfg: HierarchyConfig, wss: u64, fast: bool) -> ColoringRow {
    let accesses = if fast { 100_000 } else { 1_500_000 };
    let base_spec = |mask: WayMask, colors: Option<ColorSet>, seed: u64| MeasureSpec {
        hier_cfg: cfg,
        mask,
        wss_bytes: wss,
        page_size: PageSize::Small,
        colors,
        warm_accesses: accesses,
        measured_accesses: accesses,
        seed,
    };
    let run = |spec: MeasureSpec| {
        let mut mlr = Mlr::new(wss, spec.seed);
        measure_single(&spec, &mut mlr).0.avg_latency
    };

    // Same capacity as 2 of `ways` ways, expressed in page colors.
    let num_colors = ColorSet::num_colors_of(cfg.llc, PageSize::Small);
    let colors_for_capacity = (num_colors * 2 / u64::from(cfg.llc.ways)).max(1);
    ColoringRow {
        cat_2way: run(base_spec(WayMask::from_way_range(0, 2), None, 21)),
        coloring: run(base_spec(
            WayMask::all(cfg.llc.ways),
            Some(ColorSet::contiguous(
                cfg.llc,
                PageSize::Small,
                0,
                colors_for_capacity,
            )),
            22,
        )),
        full: run(base_spec(WayMask::all(cfg.llc.ways), None, 23)),
    }
}

/// Runs the comparison on both of the paper's machines.
pub fn run(fast: bool) -> (ColoringRow, ColoringRow) {
    report::section("Extension: CAT way-partitioning vs. OS page coloring (equal capacity)");
    let machines = vec![
        (HierarchyConfig::xeon_d(), 2 * MB),
        (HierarchyConfig::default(), 4 * MB + MB / 2),
    ];
    let out = crate::Runner::from_env().map(machines, |_, (cfg, wss)| machine(cfg, wss, fast));
    let (xeon_d, xeon_e5) = (out[0], out[1]);
    let rows = vec![
        ("Xeon-D (2MB WSS)", xeon_d),
        ("Xeon-E5 (4.5MB WSS)", xeon_e5),
    ]
    .into_iter()
    .map(|(name, r)| {
        vec![
            name.to_string(),
            format!("{:.1}", r.cat_2way),
            format!("{:.1}", r.coloring),
            format!("{:.1}", r.full),
        ]
    })
    .collect::<Vec<_>>();
    report::table(
        &[
            "machine",
            "CAT 2-way",
            "coloring (same capacity)",
            "full cache",
        ],
        &rows,
    );
    report::say("(coloring keeps full associativity: no conflict-miss penalty —");
    report::say(" the flip side is that re-coloring at runtime requires copying pages,");
    report::say(" which is why the paper builds on CAT instead)");
    (xeon_d, xeon_e5)
}
