//! Figure 5: the phase-change signal is allocation-independent.
//!
//! Memory accesses per instruction (`l1_ref / ret_ins`) for MLR and MLOAD
//! at different working-set sizes, sweeping the CAT allocation from 1 to 8
//! ways. The lines are flat: the metric depends only on the workload's
//! code, never on the cache configuration — which is what qualifies it as
//! dCat's phase signature.

use std::sync::Arc;

use workloads::{AccessStream, Mload, Mlr};

use crate::experiments::common::{paper_engine, MB};
use crate::report;
use crate::scenario::{run_scenario, PolicyKind, ScheduleItem, VmPlan};

/// Measured signature per way count for one workload.
#[derive(Debug, Clone)]
pub struct PhaseMetricSeries {
    /// Workload label.
    pub label: String,
    /// `(ways, mem_accesses_per_instruction)` points.
    pub points: Vec<(u32, f64)>,
}

impl PhaseMetricSeries {
    /// Max relative spread across the sweep — flatness measure.
    pub fn relative_spread(&self) -> f64 {
        let values: Vec<f64> = self.points.iter().map(|p| p.1).collect();
        let max = values.iter().cloned().fold(f64::MIN, f64::max);
        let min = values.iter().cloned().fold(f64::MAX, f64::min);
        if max <= 0.0 {
            return 0.0;
        }
        (max - min) / max
    }
}

/// A stream factory that can cross the sweep runner's thread boundary.
type SharedFactory = Arc<dyn Fn() -> Box<dyn AccessStream> + Send + Sync>;

fn sweep(label: &str, fast: bool, factory: SharedFactory) -> PhaseMetricSeries {
    let epochs = if fast { 3 } else { 6 };
    let ways_range: Vec<u32> = if fast {
        vec![1, 4, 8]
    } else {
        (1..=8).collect()
    };
    let points = crate::Runner::from_env().map(ways_range, |_, ways| {
        let f = Arc::clone(&factory);
        let plans = vec![VmPlan {
            name: label.to_string(),
            reserved_ways: ways,
            factory: Box::new(move |_| f()),
            schedule: vec![ScheduleItem::always()],
        }];
        let r = run_scenario(PolicyKind::StaticCat, paper_engine(fast), &plans, epochs);
        let last = r.epochs.last().expect("at least one epoch");
        let metric = if last[0].instructions == 0 {
            0.0
        } else {
            last[0].l1_ref as f64 / last[0].instructions as f64
        };
        (ways, metric)
    });
    PhaseMetricSeries {
        label: label.to_string(),
        points,
    }
}

/// Runs the sweep for MLR and MLOAD at two working-set sizes each.
pub fn run(fast: bool) -> Vec<PhaseMetricSeries> {
    report::section("Figure 5: memory accesses per instruction vs. allocation");
    let workloads: Vec<(&str, SharedFactory)> = vec![
        (
            "MLR-6MB",
            Arc::new(|| Box::new(Mlr::new(6 * MB, 1)) as Box<dyn AccessStream>),
        ),
        (
            "MLR-12MB",
            Arc::new(|| Box::new(Mlr::new(12 * MB, 2)) as Box<dyn AccessStream>),
        ),
        (
            "MLOAD-8MB",
            Arc::new(|| Box::new(Mload::new(8 * MB)) as Box<dyn AccessStream>),
        ),
        (
            "MLOAD-60MB",
            Arc::new(|| Box::new(Mload::new(60 * MB)) as Box<dyn AccessStream>),
        ),
    ];
    let series =
        crate::Runner::from_env().map(workloads, |_, (label, factory)| sweep(label, fast, factory));
    let header: Vec<String> = std::iter::once("workload".to_string())
        .chain(series[0].points.iter().map(|(w, _)| format!("{w}w")))
        .chain(std::iter::once("spread".to_string()))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = series
        .iter()
        .map(|s| {
            std::iter::once(s.label.clone())
                .chain(s.points.iter().map(|(_, v)| format!("{v:.3}")))
                .chain(std::iter::once(format!(
                    "{:.1}%",
                    s.relative_spread() * 100.0
                )))
                .collect()
        })
        .collect();
    report::table(&header_refs, &rows);
    report::say("(flat rows: the signature is independent of the cache allocation)");
    series
}
