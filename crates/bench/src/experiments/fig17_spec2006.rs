//! Figure 17 and Table 3: SPEC CPU2006 under shared / static / dCat.
//!
//! One benchmark VM (4-way, 9 MB baseline) against two MLOAD-60MB noisy
//! VMs and two lookbusy VMs. The metric is work completed per unit of
//! simulated time at steady state (instructions retired over the second
//! half of the run — the inverse-running-time analogue; the paper's
//! multi-hundred-second runs amortize dCat's discovery phase the same
//! way), normalized to the shared-cache run. The paper reports a
//! geo-mean of +25% over shared and +15.7% over static partitioning, with
//! the high-reuse benchmarks (omnetpp, astar) gaining the most and
//! streaming benchmarks gaining nothing. Table 3 records the maximum ways
//! dCat granted each benchmark.

use workloads::{spec_catalog, Lookbusy, Mload, SpecBenchmark};

use crate::experiments::common::{paper_dcat, paper_engine, MB};
use crate::report;
use crate::scenario::{run_scenario, PolicyKind, VmPlan};

/// Results for one benchmark.
#[derive(Debug, Clone)]
pub struct SpecRow {
    /// Benchmark name.
    pub name: &'static str,
    /// dCat performance / shared performance.
    pub dcat_vs_shared: f64,
    /// Static-CAT performance / shared performance.
    pub static_vs_shared: f64,
    /// Maximum ways dCat granted (Table 3).
    pub max_ways: u32,
}

fn plans(bench: SpecBenchmark) -> Vec<VmPlan> {
    vec![
        VmPlan::always(bench.name, 4, move |s| Box::new(bench.stream(500 + s))),
        VmPlan::always("mload-1", 4, |_| Box::new(Mload::new(60 * MB))),
        VmPlan::always("mload-2", 4, |_| Box::new(Mload::new(60 * MB))),
        VmPlan::always("lookbusy-1", 4, |_| Box::new(Lookbusy::new())),
        VmPlan::always("lookbusy-2", 4, |_| Box::new(Lookbusy::new())),
    ]
}

/// Runs one benchmark under the three policies.
pub fn run_one(bench: SpecBenchmark, fast: bool) -> SpecRow {
    // Fast mode still needs enough epochs that the last-quarter
    // window sits past dCat's discovery phase (one way per judged
    // interval from 4 to ~7 ways takes ~8 epochs).
    let epochs = if fast { 16 } else { 28 };
    let cfg = paper_engine(fast);
    let shared = run_scenario(PolicyKind::Shared, cfg, &plans(bench), epochs);
    let stat = run_scenario(PolicyKind::StaticCat, cfg, &plans(bench), epochs);
    let dcat = run_scenario(PolicyKind::Dcat(paper_dcat()), cfg, &plans(bench), epochs);
    // Steady-state work rate: instructions over the last quarter of the
    // run, after dCat's discovery phase has converged (the paper's
    // multi-hundred-second runs amortize discovery the same way; with the
    // harness's short runs the early probing epochs would otherwise
    // dominate the mean).
    let steady = |r: &crate::scenario::RunResult| -> f64 {
        let tail = r.epochs.len() * 3 / 4;
        r.epochs[tail..]
            .iter()
            .map(|e| e[0].instructions)
            .sum::<u64>() as f64
    };
    let base = steady(&shared).max(1.0);
    SpecRow {
        name: bench.name,
        dcat_vs_shared: steady(&dcat) / base,
        static_vs_shared: steady(&stat) / base,
        max_ways: dcat.peak_ways(0),
    }
}

/// Runs the full suite (or a 4-benchmark subset in fast mode).
pub fn run(fast: bool) -> Vec<SpecRow> {
    report::section("Figure 17: SPEC CPU2006 performance normalized to shared cache");
    let catalog = spec_catalog();
    let selection: Vec<SpecBenchmark> = if fast {
        catalog
            .into_iter()
            .filter(|b| matches!(b.name, "omnetpp" | "libquantum" | "hmmer" | "soplex"))
            .collect()
    } else {
        catalog
    };
    let rows = crate::Runner::from_env().map(selection, |_, bench| {
        let row = run_one(bench, fast);
        report::say(format!(
            "  {:<12} dCat {:.2}x  static {:.2}x  (max ways {})",
            row.name, row.dcat_vs_shared, row.static_vs_shared, row.max_ways
        ));
        row
    });

    let dcat_geo = report::geo_mean(&rows.iter().map(|r| r.dcat_vs_shared).collect::<Vec<_>>());
    let stat_geo = report::geo_mean(&rows.iter().map(|r| r.static_vs_shared).collect::<Vec<_>>());
    report::say("");
    report::say(format!(
        "geo-mean: dCat {} over shared, {} over static (paper: +25% / +15.7%)",
        report::pct(dcat_geo - 1.0),
        report::pct(dcat_geo / stat_geo - 1.0)
    ));

    report::section("Table 3: maximum cache-ways assigned by dCat");
    let printed: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![r.name.to_string(), "4".to_string(), r.max_ways.to_string()])
        .collect();
    report::table(&["benchmark", "baseline ways", "max ways (dCat)"], &printed);
    rows
}
