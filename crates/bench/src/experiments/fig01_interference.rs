//! Figure 1: impact of cache interference on MLR.
//!
//! MLR with a 6 MB and a 16 MB working set, with and without two
//! MLOAD-60MB noisy neighbors, under a fully shared LLC and under CAT with
//! a 13.5 MB (6-way) dedicated partition. The paper's findings:
//!
//! * shared + noisy destroys MLR's latency;
//! * CAT protects MLR-6MB (6 ways ≥ working set): latency ≈ the
//!   no-neighbor case;
//! * CAT fails MLR-16MB (working set exceeds the partition): latency is
//!   still far worse than the no-neighbor shared case.

use workloads::{Mload, Mlr};

use crate::experiments::common::{paper_engine, MB};
use crate::report;
use crate::scenario::{run_scenario, PolicyKind, VmPlan};

/// Measured latencies (cycles) for one working-set size.
#[derive(Debug, Clone, Copy)]
pub struct InterferenceRow {
    /// MLR working set in bytes.
    pub wss: u64,
    /// Shared cache, no noisy neighbors.
    pub shared_quiet: f64,
    /// Shared cache with two MLOAD-60MB neighbors.
    pub shared_noisy: f64,
    /// 6-way CAT partition with the same neighbors.
    pub cat_noisy: f64,
    /// 6-way CAT partition, no neighbors.
    pub cat_quiet: f64,
}

fn latency(policy: PolicyKind, wss: u64, noisy: bool, fast: bool) -> f64 {
    let epochs = if fast { 8 } else { 20 };
    let plans = vec![
        VmPlan::always("mlr", 6, move |s| Box::new(Mlr::new(wss, 100 + s))),
        noisy_plan("noisy-1", noisy),
        noisy_plan("noisy-2", noisy),
    ];
    let r = run_scenario(policy, paper_engine(fast), &plans, epochs);
    r.steady_latency(0, (epochs / 4) as usize)
}

fn noisy_plan(name: &str, active: bool) -> VmPlan {
    if active {
        VmPlan::always(name, 7, |_| Box::new(Mload::new(60 * MB)))
    } else {
        VmPlan::idle(name, 7)
    }
}

/// Runs the experiment and prints the figure's bars.
pub fn run(fast: bool) -> Vec<InterferenceRow> {
    report::section("Figure 1: Impact of cache interference for MLR");
    // Flatten the 2 working sets x 4 configurations into one task list so
    // the sweep fans out across the full `--jobs` width.
    let mut tasks = Vec::new();
    for wss in [6 * MB, 16 * MB] {
        tasks.push((PolicyKind::Shared, wss, false));
        tasks.push((PolicyKind::Shared, wss, true));
        tasks.push((PolicyKind::StaticCat, wss, true));
        tasks.push((PolicyKind::StaticCat, wss, false));
    }
    let lats = crate::Runner::from_env().map(tasks, |_, (policy, wss, noisy)| {
        latency(policy, wss, noisy, fast)
    });
    let mut rows = Vec::new();
    let mut printed = Vec::new();
    for (i, wss) in [6 * MB, 16 * MB].into_iter().enumerate() {
        let l = &lats[i * 4..i * 4 + 4];
        let row = InterferenceRow {
            wss,
            shared_quiet: l[0],
            shared_noisy: l[1],
            cat_noisy: l[2],
            cat_quiet: l[3],
        };
        printed.push(vec![
            format!("MLR-{}MB", wss / MB),
            format!("{:.1}", row.shared_quiet),
            format!("{:.1}", row.shared_noisy),
            format!("{:.1}", row.cat_noisy),
            format!("{:.1}", row.cat_quiet),
        ]);
        rows.push(row);
    }
    report::table(
        &[
            "workload",
            "shared w/o noisy",
            "shared w/ noisy",
            "CAT w/ noisy",
            "CAT w/o noisy",
        ],
        &printed,
    );
    report::say("(average data-access latency in cycles; lower is better)");
    rows
}
