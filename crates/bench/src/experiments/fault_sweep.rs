//! Fault sweep: daemon resilience under seeded random fault schedules.
//!
//! Runs the real daemon loop — fixture resctrl tree, telemetry file,
//! retry wrappers — under [`FaultPlan::random`] schedules of increasing
//! injection rate, and reports how each run weathered them: faults
//! scheduled, ticks degraded, structured events emitted, and whether the
//! loop survived to `max_ticks` with a clean invariant audit. The
//! schedules are seeded through [`smallrng::split_seed`], so the table is
//! byte-identical at any `--jobs` width.

use std::path::Path;
use std::time::Duration;

use dcat::daemon::{run_daemon_with, DaemonConfig, ResiliencePolicy};
use dcat::{DcatConfig, Event, WorkloadHandle};
use perf_events::CounterSnapshot;
use resctrl::fault::FaultPlan;
use resctrl::retry::RetryPolicy;
use resctrl::{CatCapabilities, FsBackend};

use crate::report;

/// Injection rates swept (probability of one fault per tick).
const RATES: [f64; 4] = [0.0, 0.1, 0.25, 0.5];

/// Outcome of one daemon run under one fault schedule.
#[derive(Debug, Clone)]
pub struct SweepRun {
    /// Injection rate the schedule was drawn with.
    pub rate: f64,
    /// Sub-stream seed of the schedule.
    pub seed: u64,
    /// Faults the schedule carries.
    pub scheduled: usize,
    /// Ticks that degraded (telemetry or resctrl retries exhausted).
    pub degraded: u64,
    /// Structured events the run emitted.
    pub events: usize,
    /// Invariant violations observed (must be zero).
    pub violations: usize,
    /// Final per-domain way counts, or `None` if the loop died.
    pub final_ways: Option<Vec<u32>>,
}

fn snapshot(l1: u64, llc_r: u64, llc_m: u64, ins: u64, cyc: u64) -> CounterSnapshot {
    CounterSnapshot {
        l1_ref: l1,
        llc_ref: llc_r,
        llc_miss: llc_m,
        ret_ins: ins,
        cycles: cyc,
    }
}

fn write_telemetry(path: &Path, grower: &CounterSnapshot, quiet: &CounterSnapshot) {
    let line = |name: &str, s: &CounterSnapshot| {
        format!(
            "{name},{},{},{},{},{}",
            s.l1_ref, s.llc_ref, s.llc_miss, s.ret_ins, s.cycles
        )
    };
    std::fs::write(
        path,
        format!("{}\n{}\n", line("grower", grower), line("quiet", quiet)),
    )
    .unwrap();
}

/// Runs one daemon under one fault schedule and scores the wreckage.
pub fn run_one(rate: f64, seed: u64, ticks: u64, index: usize) -> SweepRun {
    let root =
        std::env::temp_dir().join(format!("dcat-fault-sweep-{}-{index}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    if let Err(e) = FsBackend::create_fixture(&root, CatCapabilities::with_ways(20), 8) {
        panic!(
            "fault-sweep fixture setup failed: {e} (severity {:?})",
            e.severity()
        );
    }

    let telemetry = root.join("telemetry.csv");
    // A cache-hungry tenant next to a compute-bound donor: allocations
    // keep changing early on, so backend faults land on real COS writes.
    let grower = snapshot(340_000, 120_000, 60_000, 1_000_000, 20_000_000);
    let quiet = snapshot(20_000, 100, 10, 1_000_000, 800_000);
    let mut grower_total = grower;
    let mut quiet_total = quiet;
    write_telemetry(&telemetry, &grower_total, &quiet_total);

    let plan = FaultPlan::random(seed, ticks, rate);
    let scheduled = plan.total_faults();
    let cfg = DaemonConfig {
        resctrl_root: root.clone(),
        telemetry_path: telemetry.clone(),
        domains: vec![
            WorkloadHandle::new("grower", vec![0, 1], 4),
            WorkloadHandle::new("quiet", vec![2, 3], 4),
        ],
        dcat: DcatConfig {
            settle_intervals: 1,
            ..DcatConfig::default()
        },
        interval: Duration::from_millis(0),
        max_ticks: Some(ticks),
        resilience: ResiliencePolicy {
            retry: RetryPolicy::immediate(3),
            ..ResiliencePolicy::default()
        },
        fault_plan: (rate > 0.0).then_some(plan),
        obs: dcat::daemon::ObsOptions::default(),
    };

    let mut degraded = 0u64;
    let mut events = 0usize;
    let mut violations = 0usize;
    let result = run_daemon_with(&cfg, |obs| {
        if obs.degraded {
            degraded += 1;
        }
        events += obs.events.len();
        violations += obs
            .events
            .iter()
            .filter(|e| matches!(e, Event::InvariantViolation { .. }))
            .count();
        grower_total = grower_total.merged_with(&grower);
        quiet_total = quiet_total.merged_with(&quiet);
        write_telemetry(&telemetry, &grower_total, &quiet_total);
    });
    let _ = std::fs::remove_dir_all(&root);
    SweepRun {
        rate,
        seed,
        scheduled,
        degraded,
        events,
        violations,
        final_ways: result.ok().map(|r| r.iter().map(|d| d.ways).collect()),
    }
}

/// Runs the sweep and prints the table; returns the runs.
pub fn run(fast: bool) -> Vec<SweepRun> {
    report::section("Fault sweep: daemon resilience under injected fault schedules");
    let (seeds, ticks) = if fast { (2u64, 30u64) } else { (6, 120) };
    let tasks: Vec<(f64, u64)> = RATES
        .iter()
        .flat_map(|&rate| (0..seeds).map(move |s| (rate, s)))
        .collect();
    let runs = crate::Runner::from_env().map(tasks, move |index, (rate, stream)| {
        let seed = smallrng::split_seed(0xFA_017, stream);
        run_one(rate, seed, ticks, index)
    });

    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            vec![
                format!("{:.2}", r.rate),
                r.seed.to_string(),
                r.scheduled.to_string(),
                r.degraded.to_string(),
                r.events.to_string(),
                r.violations.to_string(),
                match &r.final_ways {
                    Some(w) => w
                        .iter()
                        .map(|x| x.to_string())
                        .collect::<Vec<_>>()
                        .join("/"),
                    None => "died".to_string(),
                },
            ]
        })
        .collect();
    report::table(
        &[
            "rate",
            "seed",
            "scheduled",
            "degraded",
            "events",
            "violations",
            "final ways",
        ],
        &rows,
    );
    let survived = runs.iter().filter(|r| r.final_ways.is_some()).count();
    report::say(format!(
        "{survived}/{} runs survived to max_ticks; {} invariant violations total",
        runs.len(),
        runs.iter().map(|r| r.violations).sum::<usize>()
    ));
    runs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_faulted_run_survives_without_violations() {
        let runs = run(true);
        assert_eq!(runs.len(), 8);
        for r in &runs {
            assert!(r.final_ways.is_some(), "run died: {r:?}");
            assert_eq!(r.violations, 0, "invariant violation: {r:?}");
            if r.rate == 0.0 {
                assert_eq!(r.degraded, 0);
                assert_eq!(r.events, 0);
            }
        }
        // The sweep is pointless unless the faulted runs actually hurt.
        assert!(
            runs.iter().any(|r| r.degraded > 0),
            "no degraded ticks anywhere: {runs:?}"
        );
    }
}
