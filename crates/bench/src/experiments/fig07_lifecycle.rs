//! Figure 7: the allocation lifecycle of a VM under dCat.
//!
//! (a) An idle VM donates down to one way; when a memory-intensive
//! workload starts, the reserved size is reclaimed immediately, then grown
//! one way per decision until misses subside; when the workload stops the
//! VM donates again.
//! (b) The streaming variant: growth is abandoned at the streaming cap and
//! the VM drops to one way while still running.

use workloads::{Mload, Mlr};

use crate::experiments::common::{paper_dcat, paper_engine, MB};
use crate::report;
use crate::scenario::{run_scenario, PolicyKind, ScheduleItem, VmPlan};

/// The two timelines of the figure.
#[derive(Debug, Clone)]
pub struct Lifecycle {
    /// Way series of the cache-friendly VM (panel a).
    pub friendly_ways: Vec<u32>,
    /// Way series of the streaming VM (panel b).
    pub streaming_ways: Vec<u32>,
}

/// Runs one timeline (panel a or b) and returns the full scenario record —
/// the golden decision-trace tests snapshot this.
pub fn run_timeline(streaming: bool, fast: bool) -> crate::RunResult {
    let (start, stop, total) = if fast { (2, 12, 16) } else { (4, 28, 36) };
    let mut plans = vec![VmPlan::scheduled(
        "tenant",
        3,
        vec![ScheduleItem::window(start, stop)],
        move |_| {
            if streaming {
                Box::new(Mload::new(60 * MB))
            } else {
                Box::new(Mlr::new(8 * MB, 5))
            }
        },
    )];
    for i in 0..5 {
        plans.push(VmPlan::always(format!("lookbusy-{i}"), 3, |_| {
            Box::new(workloads::Lookbusy::new())
        }));
    }
    run_scenario(
        PolicyKind::Dcat(paper_dcat()),
        paper_engine(fast),
        &plans,
        total,
    )
}

/// Runs both timelines and prints them.
pub fn run(fast: bool) -> Lifecycle {
    run_with_frames(fast).0
}

/// Like [`run`], but also returns the two timelines' `dcat-frames/v1`
/// segments concatenated in panel order (a then b) — the stream
/// `fig07_lifecycle --frames-out` exports and `dcat-top --replay`
/// renders. The segments come out of [`crate::RunResult::frames`] in
/// item order, so the bytes are identical at any `--jobs` width.
pub fn run_with_frames(fast: bool) -> (Lifecycle, String) {
    report::section("Figure 7: example of cache allocation with dCat");
    let runs = crate::Runner::from_env().map(vec![false, true], |_, streaming| {
        let r = run_timeline(streaming, fast);
        (r.ways_series(0), r.frames)
    });
    let frames: String = runs.iter().map(|(_, f)| f.as_str()).collect();
    let (friendly_ways, streaming_ways) = (runs[0].0.clone(), runs[1].0.clone());
    let f: Vec<f64> = friendly_ways.iter().map(|&w| w as f64).collect();
    let s: Vec<f64> = streaming_ways.iter().map(|&w| w as f64).collect();
    report::ascii_series("(a) cache-friendly VM: ways over time", &f, 8);
    report::ascii_series("(b) streaming VM: ways over time", &s, 8);
    report::say(format!(
        "friendly: {:?}",
        friendly_ways
            .iter()
            .map(|w| w.to_string())
            .collect::<Vec<_>>()
            .join(",")
    ));
    report::say(format!(
        "streaming: {:?}",
        streaming_ways
            .iter()
            .map(|w| w.to_string())
            .collect::<Vec<_>>()
            .join(",")
    ));
    (
        Lifecycle {
            friendly_ways,
            streaming_ways,
        },
        frames,
    )
}
