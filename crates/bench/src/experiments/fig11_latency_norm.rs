//! Figure 11: MLR data-access latency normalized to the full cache.
//!
//! For the Figure-10 scenario, the steady-state latency of the MLR VM
//! under dCat and under static 3-way CAT, normalized to MLR running alone
//! with the entire LLC. dCat tracks the full-cache latency closely; static
//! partitioning is far worse once the working set exceeds 3 ways.

use workloads::{Lookbusy, Mlr};

use crate::experiments::common::{paper_engine, MB};
use crate::report;
use crate::scenario::{run_scenario, PolicyKind, VmPlan};

/// One working-set point.
#[derive(Debug, Clone, Copy)]
pub struct LatencyNormRow {
    /// Working set in bytes.
    pub wss: u64,
    /// dCat latency / full-cache latency.
    pub dcat_norm: f64,
    /// Static-CAT latency / full-cache latency.
    pub static_norm: f64,
}

fn steady_latency(policy: PolicyKind, wss: u64, with_neighbors: bool, fast: bool) -> f64 {
    let epochs = if fast { 16 } else { 44 };
    let mut plans = vec![VmPlan::always("mlr", 3, move |s| {
        Box::new(Mlr::new(wss, 70 + s))
    })];
    if with_neighbors {
        for i in 0..5 {
            plans.push(VmPlan::always(format!("lookbusy-{i}"), 3, |_| {
                Box::new(Lookbusy::new())
            }));
        }
    }
    let r = run_scenario(policy, paper_engine(fast), &plans, epochs);
    r.steady_latency(0, (epochs / 4) as usize)
}

/// Runs the comparison.
pub fn run(fast: bool) -> Vec<LatencyNormRow> {
    report::section("Figure 11: normalized (to full cache) data access latency for MLR");
    let sizes: &[u64] = if fast {
        &[4 * MB, 8 * MB]
    } else {
        &[4 * MB, 8 * MB, 12 * MB, 16 * MB]
    };
    // Flatten the (size x policy) grid so every scenario run is one task.
    let mut tasks = Vec::new();
    for &wss in sizes {
        // Full cache: MLR alone, unmanaged (it can use every way).
        tasks.push((PolicyKind::Shared, wss, false));
        tasks.push((
            PolicyKind::Dcat(crate::experiments::common::paper_dcat()),
            wss,
            true,
        ));
        tasks.push((PolicyKind::StaticCat, wss, true));
    }
    let lats = crate::Runner::from_env().map(tasks, |_, (policy, wss, neighbors)| {
        steady_latency(policy, wss, neighbors, fast)
    });
    let rows: Vec<LatencyNormRow> = sizes
        .iter()
        .enumerate()
        .map(|(i, &wss)| {
            let (full, dcat, stat) = (lats[i * 3], lats[i * 3 + 1], lats[i * 3 + 2]);
            LatencyNormRow {
                wss,
                dcat_norm: dcat / full,
                static_norm: stat / full,
            }
        })
        .collect();
    let printed: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("MLR-{}MB", r.wss / MB),
                format!("{:.2}x", r.dcat_norm),
                format!("{:.2}x", r.static_norm),
            ]
        })
        .collect();
    report::table(
        &["workload", "dCat / full cache", "static CAT / full cache"],
        &printed,
    );
    report::say("(1.0x = full-cache latency; dCat stays close, static CAT does not)");
    rows
}
