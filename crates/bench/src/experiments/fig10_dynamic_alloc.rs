//! Figure 10: dCat sizes the allocation to the working set.
//!
//! Six VMs with a 3-way (6.75 MB) baseline; one runs MLR with a working
//! set swept from 4 MB to 16 MB, five run lookbusy. dCat shrinks the
//! lookbusy VMs to one way and grows the MLR VM until its IPC stops
//! improving — the final allocation tracks the working-set size.

use workloads::{Lookbusy, Mlr};

use crate::experiments::common::{paper_dcat, paper_engine, MB};
use crate::report;
use crate::scenario::{run_scenario, PolicyKind, RunResult, VmPlan};

/// One working-set point of the figure.
#[derive(Debug, Clone)]
pub struct DynamicAllocRow {
    /// MLR working set in bytes.
    pub wss: u64,
    /// Final ways granted to the MLR VM.
    pub final_ways: u32,
    /// Ways per epoch (timeline).
    pub ways_series: Vec<u32>,
    /// Normalized IPC (to baseline) per epoch where known.
    pub norm_ipc_series: Vec<f64>,
    /// Final ways of each lookbusy VM.
    pub lookbusy_ways: Vec<u32>,
}

/// Builds the 6-VM scenario and runs it under dCat.
pub fn run_one(wss: u64, fast: bool) -> (DynamicAllocRow, RunResult) {
    let epochs = if fast { 16 } else { 44 };
    let mut plans = vec![VmPlan::always("mlr", 3, move |s| {
        Box::new(Mlr::new(wss, 70 + s))
    })];
    for i in 0..5 {
        plans.push(VmPlan::always(format!("lookbusy-{i}"), 3, |_| {
            Box::new(Lookbusy::new())
        }));
    }
    let r = run_scenario(
        PolicyKind::Dcat(paper_dcat()),
        paper_engine(fast),
        &plans,
        epochs,
    );
    let row = DynamicAllocRow {
        wss,
        final_ways: *r.ways_series(0).last().expect("ran"),
        ways_series: r.ways_series(0),
        norm_ipc_series: r
            .reports
            .iter()
            .map(|e| e[0].norm_ipc.unwrap_or(0.0))
            .collect(),
        lookbusy_ways: (1..6)
            .map(|i| *r.ways_series(i).last().expect("ran"))
            .collect(),
    };
    (row, r)
}

/// Runs the working-set sweep.
pub fn run(fast: bool) -> Vec<DynamicAllocRow> {
    report::section("Figure 10: cache-way allocation and normalized IPC for MLR under dCat");
    let sizes: &[u64] = if fast {
        &[4 * MB, 8 * MB]
    } else {
        &[4 * MB, 8 * MB, 12 * MB, 16 * MB]
    };
    let rows = crate::Runner::from_env().map(sizes.to_vec(), |_, wss| {
        let (row, _) = run_one(wss, fast);
        report::say(format!(
            "MLR-{:>2}MB  ways over time: {}",
            wss / MB,
            row.ways_series
                .iter()
                .map(|w| w.to_string())
                .collect::<Vec<_>>()
                .join(",")
        ));
        row
    });
    let printed: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let final_norm = r.norm_ipc_series.last().copied().unwrap_or(0.0);
            vec![
                format!("MLR-{}MB", r.wss / MB),
                r.final_ways.to_string(),
                format!("{:.2}x", final_norm),
                format!("{:?}", r.lookbusy_ways),
            ]
        })
        .collect();
    report::table(
        &["workload", "final ways", "final norm. IPC", "lookbusy ways"],
        &printed,
    );
    report::say("(larger working sets earn more ways; lookbusy VMs donate down to 1)");
    rows
}
