//! Figures 15 & 16: MLR-8MB next to an MLOAD-60MB noisy neighbor.
//!
//! Seven VMs: MLR-8MB (3-way baseline), MLOAD-60MB (3-way baseline), five
//! lookbusy (2-way baselines). Both memory-intensive VMs grow as Unknowns
//! (MLOAD with priority); MLOAD is found Streaming and releases its ways,
//! which MLR then absorbs. Figure 16's claim: dCat improves MLR massively
//! while MLOAD is not hurt versus static partitioning.

use workloads::{Lookbusy, Mload, Mlr};

use crate::experiments::common::{paper_dcat, paper_engine, MB};
use crate::report;
use crate::scenario::{run_scenario, PolicyKind, VmPlan};

/// Combined results for Figures 15 and 16.
#[derive(Debug, Clone)]
pub struct MixedRow {
    /// Ways of the MLR VM per epoch (dCat run).
    pub mlr_ways: Vec<u32>,
    /// Ways of the MLOAD VM per epoch (dCat run).
    pub mload_ways: Vec<u32>,
    /// MLR steady normalized IPC under dCat (to its baseline).
    pub mlr_norm_ipc: f64,
    /// Fig 16: latency normalized to full cache, dCat run.
    pub mlr_latency_norm_dcat: f64,
    /// Fig 16: latency normalized to full cache, static run.
    pub mlr_latency_norm_static: f64,
    /// MLOAD IPC under dCat / MLOAD IPC under static CAT (>= ~1 means the
    /// streaming neighbor was not hurt).
    pub mload_ipc_ratio: f64,
}

fn plans() -> Vec<VmPlan> {
    let mut plans = vec![
        VmPlan::always("mlr-8mb", 3, |s| Box::new(Mlr::new(8 * MB, 400 + s))),
        VmPlan::always("mload-60mb", 3, |_| Box::new(Mload::new(60 * MB))),
    ];
    for i in 0..5 {
        plans.push(VmPlan::always(format!("lookbusy-{i}"), 2, |_| {
            Box::new(Lookbusy::new())
        }));
    }
    plans
}

/// Runs the three scenarios (dCat, static CAT, and the full-cache
/// reference) in parallel and returns them in that order — the
/// determinism regression test compares these records across `--jobs`
/// widths.
pub fn run_results(fast: bool) -> Vec<crate::RunResult> {
    let epochs = if fast { 20 } else { 48 };
    crate::Runner::from_env().map(vec![0usize, 1, 2], |_, which| match which {
        0 => run_scenario(
            PolicyKind::Dcat(paper_dcat()),
            paper_engine(fast),
            &plans(),
            epochs,
        ),
        1 => run_scenario(PolicyKind::StaticCat, paper_engine(fast), &plans(), epochs),
        // Full-cache reference: MLR alone with the whole LLC.
        _ => run_scenario(
            PolicyKind::Shared,
            paper_engine(fast),
            &[VmPlan::always("mlr-8mb", 3, |s| {
                Box::new(Mlr::new(8 * MB, 400 + s))
            })],
            epochs,
        ),
    })
}

/// Runs the scenario under dCat and static CAT plus the full-cache
/// reference, and prints both figures.
pub fn run(fast: bool) -> MixedRow {
    report::section("Figure 15: way allocation for MLR-8MB + MLOAD-60MB under dCat");
    let epochs = if fast { 20 } else { 48 };
    let steady = (epochs / 4) as usize;

    let mut results = run_results(fast);
    let (dcat, stat, full) = {
        let full = results.pop().expect("three runs");
        let stat = results.pop().expect("three runs");
        let dcat = results.pop().expect("three runs");
        (dcat, stat, full)
    };

    let n = dcat.reports.len().min(steady);
    let mlr_norm_ipc = dcat.reports[dcat.reports.len() - n..]
        .iter()
        .map(|e| e[0].norm_ipc.unwrap_or(0.0))
        .sum::<f64>()
        / n as f64;

    let row = MixedRow {
        mlr_ways: dcat.ways_series(0),
        mload_ways: dcat.ways_series(1),
        mlr_norm_ipc,
        mlr_latency_norm_dcat: dcat.steady_latency(0, steady) / full.steady_latency(0, steady),
        mlr_latency_norm_static: stat.steady_latency(0, steady) / full.steady_latency(0, steady),
        mload_ipc_ratio: dcat.steady_ipc(1, steady) / stat.steady_ipc(1, steady),
    };

    report::say(format!(
        "MLR   ways: {}",
        row.mlr_ways
            .iter()
            .map(|w| w.to_string())
            .collect::<Vec<_>>()
            .join(",")
    ));
    report::say(format!(
        "MLOAD ways: {}",
        row.mload_ways
            .iter()
            .map(|w| w.to_string())
            .collect::<Vec<_>>()
            .join(",")
    ));
    report::say(format!(
        "MLR steady normalized IPC under dCat: {:.2}x",
        row.mlr_norm_ipc
    ));

    report::section("Figure 16: normalized (to full cache) latency, dCat vs static");
    report::table(
        &["workload", "dCat / full", "static / full", "note"],
        &[
            vec![
                "MLR-8MB".to_string(),
                format!("{:.2}x", row.mlr_latency_norm_dcat),
                format!("{:.2}x", row.mlr_latency_norm_static),
                "dCat near full-cache".to_string(),
            ],
            vec![
                "MLOAD-60MB".to_string(),
                format!("{:.2}x (IPC vs static)", row.mload_ipc_ratio),
                "1.00x".to_string(),
                "streaming VM unharmed".to_string(),
            ],
        ],
    );
    row
}
