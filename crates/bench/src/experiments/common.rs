//! Shared experiment plumbing.

use dcat::DcatConfig;
use host::EngineConfig;
use llc_sim::{FrameAllocator, FramePolicy, LatencyModel};
use llc_sim::{Hierarchy, HierarchyConfig, PageMapper, PageSize, WayMask};
use workloads::AccessStream;

/// Engine configuration on the paper's Xeon-E5 v4 socket.
///
/// `fast` shrinks the per-epoch cycle budget (for tests); experiments use
/// the full budget so cache warm-up resolves within a few epochs. The
/// LLC fidelity follows the process-global `--sample-sets` flag
/// ([`crate::runner::llc_fidelity`]): full by default, UMON-style set
/// sampling when the user opts in for speed.
pub fn paper_engine(fast: bool) -> EngineConfig {
    let mut cfg = EngineConfig::xeon_e5_v4();
    cfg.cycles_per_epoch = if fast { 1_500_000 } else { 10_000_000 };
    cfg.llc_fidelity = crate::runner::llc_fidelity();
    cfg
}

/// dCat configuration used by the timeline experiments.
pub fn paper_dcat() -> DcatConfig {
    DcatConfig::default()
}

/// Statistics from a single-core measurement run.
#[derive(Debug, Clone, Copy)]
pub struct SingleRun {
    /// Average data-access latency in cycles.
    pub avg_latency: f64,
    /// LLC miss rate over the measured window.
    pub llc_miss_rate: f64,
}

/// Parameters for a single-stream measurement (the microbenchmark
/// methodology of the paper's Section 2, Figures 2 and 3, where no
/// controller is involved).
#[derive(Debug, Clone)]
pub struct MeasureSpec {
    /// Hierarchy shape.
    pub hier_cfg: HierarchyConfig,
    /// CAT fill mask for the measured core.
    pub mask: WayMask,
    /// Working-set size (for the returned line list).
    pub wss_bytes: u64,
    /// Page size backing the buffer.
    pub page_size: PageSize,
    /// Page colors the buffer may use (OS page coloring); `None` = any.
    pub colors: Option<llc_sim::ColorSet>,
    /// Accesses to run before measurement starts.
    pub warm_accesses: u64,
    /// Accesses measured.
    pub measured_accesses: u64,
    /// Frame-placement seed.
    pub seed: u64,
}

/// Drives one stream alone on one core with a fixed LLC way mask and/or a
/// page-color restriction. Returns the measured statistics and the
/// physical line addresses of the stream's working set (for conflict
/// histograms).
pub fn measure_single(
    spec: &MeasureSpec,
    stream: &mut dyn AccessStream,
) -> (SingleRun, Vec<llc_sim::PhysAddr>) {
    let mut hierarchy = Hierarchy::new(spec.hier_cfg);
    hierarchy.set_fill_mask(0, spec.mask);
    let mut frames =
        FrameAllocator::new(2 * 1024 * 1024 * 1024, FramePolicy::Randomized, spec.seed);
    let mut mapper = PageMapper::new(spec.page_size);
    let colors = spec.colors.as_ref();

    for _ in 0..spec.warm_accesses {
        let r = stream.next_access();
        let p = mapper
            .translate_colored(r.vaddr, &mut frames, colors)
            .expect("pool exhausted");
        hierarchy.access(0, p.0, r.kind);
    }
    hierarchy.reset_counters(0);
    for _ in 0..spec.measured_accesses {
        let r = stream.next_access();
        let p = mapper
            .translate_colored(r.vaddr, &mut frames, colors)
            .expect("pool exhausted");
        hierarchy.access(0, p.0, r.kind);
    }
    let counters = hierarchy.counters(0);
    let lat = LatencyModel::default().average_access_latency(&counters);
    let miss_rate = if counters.llc_ref == 0 {
        0.0
    } else {
        counters.llc_miss as f64 / counters.llc_ref as f64
    };

    // Translate every line of the working set for the histogram.
    let lines: Vec<llc_sim::PhysAddr> = (0..spec.wss_bytes / 64)
        .map(|l| {
            mapper
                .translate_colored(llc_sim::VirtAddr(l * 64), &mut frames, colors)
                .expect("pool exhausted")
        })
        .collect();
    (
        SingleRun {
            avg_latency: lat,
            llc_miss_rate: miss_rate,
        },
        lines,
    )
}

/// Megabytes, readable in scenario definitions.
pub const MB: u64 = 1024 * 1024;

#[cfg(test)]
mod tests {
    use super::*;
    use llc_sim::CacheGeometry;
    use workloads::Mlr;

    fn spec(cfg: HierarchyConfig, mask: WayMask, wss: u64, seed: u64) -> MeasureSpec {
        MeasureSpec {
            hier_cfg: cfg,
            mask,
            wss_bytes: wss,
            page_size: PageSize::Small,
            colors: None,
            warm_accesses: 50_000,
            measured_accesses: 50_000,
            seed,
        }
    }

    fn small_cfg() -> HierarchyConfig {
        HierarchyConfig {
            cores: 1,
            l1: CacheGeometry::new(64, 8, 64),
            l2: CacheGeometry::new(128, 8, 64),
            llc: CacheGeometry::from_capacity(2 * MB, 8),
            llc_policy: Default::default(),
        }
    }

    #[test]
    fn measure_single_reports_plausible_latency() {
        // Small WSS, full mask: mostly cache hits -> latency far below DRAM.
        let mut mlr = Mlr::new(256 * 1024, 1);
        let (fit, lines) =
            measure_single(&spec(small_cfg(), WayMask::all(8), 256 * 1024, 7), &mut mlr);
        assert!(fit.avg_latency < 100.0, "latency {}", fit.avg_latency);
        assert_eq!(lines.len(), 4096);

        // Huge WSS: DRAM bound.
        let mut big = Mlr::new(16 * MB, 2);
        let (thrash, _) = measure_single(&spec(small_cfg(), WayMask::all(8), 16 * MB, 8), &mut big);
        assert!(thrash.avg_latency > fit.avg_latency * 2.0);
        assert!(thrash.llc_miss_rate > 0.5);
    }

    #[test]
    fn colored_measurement_restricts_frames() {
        use llc_sim::ColorSet;
        let cfg = small_cfg();
        let colors = ColorSet::contiguous(cfg.llc, PageSize::Small, 0, 16);
        let mut s = spec(cfg, WayMask::all(8), 256 * 1024, 9);
        s.colors = Some(colors.clone());
        let mut mlr = Mlr::new(256 * 1024, 3);
        let (_, lines) = measure_single(&s, &mut mlr);
        for p in lines {
            assert!(colors.permits_frame(p.0 & !4095, PageSize::Small));
        }
    }

    #[test]
    fn paper_engine_fast_mode_is_cheaper() {
        assert!(paper_engine(true).cycles_per_epoch < paper_engine(false).cycles_per_epoch);
    }
}
