//! Regenerates the paper's fig09 (see DESIGN.md experiment index).

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    dcat_bench::experiments::fig09_ipc_threshold::run(fast);
}
