//! Regenerates the paper's fig09 (see DESIGN.md experiment index).

fn main() {
    let fast = dcat_bench::Cli::from_env().fast;
    dcat_bench::experiments::fig09_ipc_threshold::run(fast);
}
