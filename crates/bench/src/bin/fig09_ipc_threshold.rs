//! Regenerates the paper's fig09 (see DESIGN.md experiment index).

fn main() {
    dcat_bench::main_with(run);
}

fn run(cli: dcat_bench::Cli) {
    let fast = cli.fast;
    dcat_bench::experiments::fig09_ipc_threshold::run(fast);
}
