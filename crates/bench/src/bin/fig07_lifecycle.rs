//! Regenerates the paper's fig07 (see DESIGN.md experiment index).

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    dcat_bench::experiments::fig07_lifecycle::run(fast);
}
