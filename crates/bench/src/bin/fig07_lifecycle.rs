//! Regenerates the paper's fig07 (see DESIGN.md experiment index).

fn main() {
    let fast = dcat_bench::Cli::from_env().fast;
    dcat_bench::experiments::fig07_lifecycle::run(fast);
}
