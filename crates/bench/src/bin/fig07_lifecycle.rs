//! Regenerates the paper's fig07 (see DESIGN.md experiment index).

fn main() {
    dcat_bench::main_with(run);
}

fn run(cli: dcat_bench::Cli) {
    let fast = cli.fast;
    dcat_bench::experiments::fig07_lifecycle::run(fast);
}
