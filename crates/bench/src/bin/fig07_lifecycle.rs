//! Regenerates the paper's fig07 (see DESIGN.md experiment index).
//!
//! `--frames-out <path>` additionally exports the two timelines'
//! `dcat-frames/v1` stream (panel a's segment, then panel b's) for
//! `dcat-top --replay` and the CI headless-render diff.

fn main() {
    dcat_bench::main_with(run);
}

fn run(cli: dcat_bench::Cli) {
    let (_, frames) = dcat_bench::experiments::fig07_lifecycle::run_with_frames(cli.fast);
    if let Some(path) = cli.frames_out.as_deref() {
        if let Err(e) = dcat_obs::write_text(path, &frames) {
            panic!("frames export to {}: {e}", path.display());
        }
    }
}
