//! Daemon resilience sweep under injected fault schedules (see DESIGN.md).

fn main() {
    let fast = dcat_bench::Cli::from_env().fast;
    dcat_bench::experiments::fault_sweep::run(fast);
}
