//! Daemon resilience sweep under injected fault schedules (see DESIGN.md).

fn main() {
    dcat_bench::main_with(run);
}

fn run(cli: dcat_bench::Cli) {
    let fast = cli.fast;
    dcat_bench::experiments::fault_sweep::run(fast);
}
