//! Regenerates Table 5 (PostgreSQL under pgbench SELECTs).

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    dcat_bench::experiments::tab_services::run_service(
        dcat_bench::experiments::tab_services::Service::Postgres,
        fast,
    );
    dcat_bench::experiments::tab_services::run_postgres_multi(fast);
}
