//! Regenerates Table 5 (PostgreSQL under pgbench SELECTs).

fn main() {
    let fast = dcat_bench::Cli::from_env().fast;
    dcat_bench::experiments::tab_services::run_service(
        dcat_bench::experiments::tab_services::Service::Postgres,
        fast,
    );
    dcat_bench::experiments::tab_services::run_postgres_multi(fast);
}
