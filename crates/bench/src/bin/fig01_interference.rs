//! Regenerates the paper's fig01 (see DESIGN.md experiment index).

fn main() {
    let fast = dcat_bench::Cli::from_env().fast;
    dcat_bench::experiments::fig01_interference::run(fast);
}
