//! Regenerates the paper's fig01 (see DESIGN.md experiment index).

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    dcat_bench::experiments::fig01_interference::run(fast);
}
