//! Regenerates the paper's fig10 (see DESIGN.md experiment index).

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    dcat_bench::experiments::fig10_dynamic_alloc::run(fast);
}
