//! Regenerates the paper's fig10 (see DESIGN.md experiment index).

fn main() {
    let fast = dcat_bench::Cli::from_env().fast;
    dcat_bench::experiments::fig10_dynamic_alloc::run(fast);
}
