//! Regenerates the paper's fig14 (see DESIGN.md experiment index).

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    dcat_bench::experiments::fig14_two_receivers::run(fast);
}
