//! Regenerates the paper's fig14 (see DESIGN.md experiment index).

fn main() {
    dcat_bench::main_with(run);
}

fn run(cli: dcat_bench::Cli) {
    let fast = cli.fast;
    dcat_bench::experiments::fig14_two_receivers::run(fast);
}
