//! Regenerates the paper's fig14 (see DESIGN.md experiment index).

fn main() {
    let fast = dcat_bench::Cli::from_env().fast;
    dcat_bench::experiments::fig14_two_receivers::run(fast);
}
