//! Regenerates the paper's fig05 (see DESIGN.md experiment index).

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    dcat_bench::experiments::fig05_phase_metric::run(fast);
}
