//! Regenerates the paper's fig05 (see DESIGN.md experiment index).

fn main() {
    let fast = dcat_bench::Cli::from_env().fast;
    dcat_bench::experiments::fig05_phase_metric::run(fast);
}
