//! Regenerates Table 4 (Redis under Memtier GETs).

fn main() {
    let fast = dcat_bench::Cli::from_env().fast;
    dcat_bench::experiments::tab_services::run_service(
        dcat_bench::experiments::tab_services::Service::Redis,
        fast,
    );
}
