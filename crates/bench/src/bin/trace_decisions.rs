//! Diagnostic: prints dCat's per-epoch decisions for the Redis scenario
//! (class, ways, IPC, normalized IPC, miss rate) — the quickest way to see
//! the controller think. `--fast` runs a scaled-down variant.

use dcat_bench::experiments::common::{paper_dcat, paper_engine, MB};
use dcat_bench::scenario::{run_scenario, PolicyKind, VmPlan};
use workloads::{Lookbusy, Mload, RedisModel};

fn main() {
    dcat_bench::main_with(run);
}

fn run(cli: dcat_bench::Cli) {
    let fast = cli.fast;
    let plans = vec![
        VmPlan::always("service", 4, |s| {
            Box::new(RedisModel::paper_default(700 + s))
        }),
        VmPlan::always("mload-1", 4, |_| Box::new(Mload::new(60 * MB))),
        VmPlan::always("mload-2", 4, |_| Box::new(Mload::new(60 * MB))),
        VmPlan::always("lookbusy-1", 4, |_| Box::new(Lookbusy::new())),
        VmPlan::always("lookbusy-2", 4, |_| Box::new(Lookbusy::new())),
    ];
    let r = run_scenario(
        PolicyKind::Dcat(paper_dcat()),
        paper_engine(fast),
        &plans,
        if fast { 16 } else { 36 },
    );
    for (e, rep) in r.reports.iter().enumerate() {
        let d = &rep[0];
        println!(
            "e{e:>2} class={:<9} ways={:>2} ipc={:.3} norm={:?} miss={:.3} phase_chg={}",
            d.class.to_string(),
            d.ways,
            d.ipc,
            d.norm_ipc.map(|v| (v * 100.0).round() / 100.0),
            d.llc_miss_rate,
            d.phase_changed
        );
    }
}
