//! Regenerates Figure 16 (it is produced together with Figure 15).

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    dcat_bench::experiments::fig15_mixed::run(fast);
}
