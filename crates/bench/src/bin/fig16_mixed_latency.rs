//! Regenerates Figure 16 (it is produced together with Figure 15).

fn main() {
    let fast = dcat_bench::Cli::from_env().fast;
    dcat_bench::experiments::fig15_mixed::run(fast);
}
