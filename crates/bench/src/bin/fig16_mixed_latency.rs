//! Regenerates Figure 16 (it is produced together with Figure 15).

fn main() {
    dcat_bench::main_with(run);
}

fn run(cli: dcat_bench::Cli) {
    let fast = cli.fast;
    dcat_bench::experiments::fig15_mixed::run(fast);
}
