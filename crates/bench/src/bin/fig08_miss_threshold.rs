//! Regenerates the paper's fig08 (see DESIGN.md experiment index).

fn main() {
    let fast = dcat_bench::Cli::from_env().fast;
    dcat_bench::experiments::fig08_miss_threshold::run(fast);
}
