//! Regenerates the paper's fig08 (see DESIGN.md experiment index).

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    dcat_bench::experiments::fig08_miss_threshold::run(fast);
}
