//! `dcat-perfbench` — the deterministic benchmark harness.
//!
//! Modes:
//!
//! * default: run the suites against the wall clock, print the human
//!   table, write `BENCH_<suite>.json` into `--out-dir` (default `.`),
//!   and — when a blessed baseline exists in `--baseline-dir` — gate
//!   the fresh run's normalized scores against it (fail on >25%
//!   regression, tolerance taken from the baseline's header).
//! * `--check`: run every suite once with a fake deterministic clock,
//!   validate the emitted JSON against the schema, write nothing. This
//!   is the CI self-test; it has no time dependence at all.
//! * `DCAT_BLESS=1`: also rewrite the baseline files with the fresh
//!   results instead of gating (use after an intentional perf change).
//!
//! Flags: `--suite micro|macro|all`, `--quick` (smoke-level iteration
//! counts), `--out-dir DIR`, `--baseline-dir DIR`.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use dcat_bench::perf::{self, harness::FakeClock, json, ClockKind};
use dcat_bench::report;
use dcat_bench::timing::WallClock;

struct Args {
    suites: Vec<String>,
    check: bool,
    quick: bool,
    out_dir: PathBuf,
    baseline_dir: PathBuf,
}

fn parse_args() -> Args {
    let mut suites: Vec<String> = perf::SUITES.iter().map(|s| s.to_string()).collect();
    let mut check = false;
    let mut quick = false;
    let mut out_dir = PathBuf::from(".");
    let mut baseline_dir = PathBuf::from(".");
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut set_suite = |v: &str| match v {
            "all" => suites = perf::SUITES.iter().map(|s| s.to_string()).collect(),
            s if perf::SUITES.contains(&s) => suites = vec![s.to_string()],
            s => {
                report::say(format!("unknown suite '{s}' (micro|macro|all)"));
                std::process::exit(2);
            }
        };
        if arg == "--check" {
            check = true;
        } else if arg == "--quick" {
            quick = true;
        } else if arg == "--suite" {
            if let Some(v) = it.next() {
                set_suite(v);
            }
        } else if let Some(v) = arg.strip_prefix("--suite=") {
            set_suite(v);
        } else if arg == "--out-dir" {
            if let Some(v) = it.next() {
                out_dir = PathBuf::from(v);
            }
        } else if let Some(v) = arg.strip_prefix("--out-dir=") {
            out_dir = PathBuf::from(v);
        } else if arg == "--baseline-dir" {
            if let Some(v) = it.next() {
                baseline_dir = PathBuf::from(v);
            }
        } else if let Some(v) = arg.strip_prefix("--baseline-dir=") {
            baseline_dir = PathBuf::from(v);
        }
    }
    Args {
        suites,
        check,
        quick,
        out_dir,
        baseline_dir,
    }
}

fn bench_file(dir: &Path, suite: &str) -> PathBuf {
    dir.join(format!("BENCH_{suite}.json"))
}

/// `--check`: fake clock, quick counts, schema validation, no files.
fn self_test(suites: &[String]) -> ExitCode {
    for name in suites {
        let mut clock = FakeClock::new(1_000_000);
        let result = perf::run_suite(name, &mut clock, ClockKind::Fake, true);
        let text = result.to_json();
        match json::validate(&text) {
            Ok(parsed) => report::say(format!(
                "suite '{name}': schema ok ({} cases, {} derived)",
                parsed.cases.len(),
                parsed.derived.len()
            )),
            Err(e) => {
                report::say(format!("suite '{name}': schema INVALID: {e}"));
                return ExitCode::FAILURE;
            }
        }
    }
    report::say("perfbench --check passed");
    ExitCode::SUCCESS
}

fn measure(args: &Args) -> ExitCode {
    let bless = std::env::var_os("DCAT_BLESS").is_some();
    let mut failed = false;
    for name in &args.suites {
        let mut clock = WallClock::new();
        let result = perf::run_suite(name, &mut clock, ClockKind::Wall, args.quick);
        perf::print_table(&result);
        let text = result.to_json();
        let fresh = match json::validate(&text) {
            Ok(p) => p,
            Err(e) => {
                report::say(format!("suite '{name}': emitted JSON invalid: {e}"));
                failed = true;
                continue;
            }
        };
        std::fs::create_dir_all(&args.out_dir).expect("create --out-dir");
        let out_path = bench_file(&args.out_dir, name);
        std::fs::write(&out_path, &text).expect("write BENCH json");
        report::say(format!("wrote {}", out_path.display()));

        let base_path = bench_file(&args.baseline_dir, name);
        if bless {
            if base_path != out_path {
                std::fs::write(&base_path, &text).expect("write blessed baseline");
            }
            report::say(format!("blessed {}", base_path.display()));
            continue;
        }
        match std::fs::read_to_string(&base_path) {
            Err(_) => report::say(format!(
                "no baseline at {} (run with DCAT_BLESS=1 to create it)",
                base_path.display()
            )),
            Ok(base_text) => match json::validate(&base_text) {
                Err(e) => {
                    report::say(format!("baseline {} invalid: {e}", base_path.display()));
                    failed = true;
                }
                Ok(baseline) => match json::gate(&fresh, &baseline) {
                    Ok(notes) => {
                        for n in notes {
                            report::say(format!("  gate: {n}"));
                        }
                        report::say(format!("suite '{name}': gate passed"));
                    }
                    Err(failures) => {
                        for f in failures {
                            report::say(format!("  gate FAILURE: {f}"));
                        }
                        report::say(format!(
                            "suite '{name}': gate FAILED (re-bless with DCAT_BLESS=1 \
                             if the regression is intentional)"
                        ));
                        failed = true;
                    }
                },
            },
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    if args.check {
        self_test(&args.suites)
    } else {
        measure(&args)
    }
}
