//! Regenerates the paper's fig03 (see DESIGN.md experiment index).

fn main() {
    let fast = dcat_bench::Cli::from_env().fast;
    dcat_bench::experiments::fig03_set_histogram::run(fast);
}
