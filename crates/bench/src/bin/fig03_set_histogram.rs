//! Regenerates the paper's fig03 (see DESIGN.md experiment index).

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    dcat_bench::experiments::fig03_set_histogram::run(fast);
}
