//! Regenerates the paper's fig03 (see DESIGN.md experiment index).

fn main() {
    dcat_bench::main_with(run);
}

fn run(cli: dcat_bench::Cli) {
    let fast = cli.fast;
    dcat_bench::experiments::fig03_set_histogram::run(fast);
}
