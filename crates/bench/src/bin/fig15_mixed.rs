//! Regenerates the paper's fig15 (see DESIGN.md experiment index).

fn main() {
    let fast = dcat_bench::Cli::from_env().fast;
    dcat_bench::experiments::fig15_mixed::run(fast);
}
