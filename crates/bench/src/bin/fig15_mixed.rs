//! Regenerates the paper's fig15 (see DESIGN.md experiment index).

fn main() {
    dcat_bench::main_with(run);
}

fn run(cli: dcat_bench::Cli) {
    let fast = cli.fast;
    dcat_bench::experiments::fig15_mixed::run(fast);
}
