//! Regenerates the paper's fig15 (see DESIGN.md experiment index).

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    dcat_bench::experiments::fig15_mixed::run(fast);
}
