//! Regenerates the paper's fig13 (see DESIGN.md experiment index).

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    dcat_bench::experiments::fig13_streaming::run(fast);
}
