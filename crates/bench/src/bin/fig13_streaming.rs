//! Regenerates the paper's fig13 (see DESIGN.md experiment index).

fn main() {
    let fast = dcat_bench::Cli::from_env().fast;
    dcat_bench::experiments::fig13_streaming::run(fast);
}
