//! Ablation: the settle interval (epochs between a ways change and its
//! judgement). Too small misjudges cold caches; too large converges
//! slowly. Uses the Figure-10 MLR-8MB scenario.

use dcat::DcatConfig;
use dcat_bench::experiments::common::{paper_engine, MB};
use dcat_bench::report;
use dcat_bench::scenario::{run_scenario, PolicyKind, VmPlan};
use workloads::{Lookbusy, Mlr};

fn main() {
    dcat_bench::main_with(run);
}

fn run(cli: dcat_bench::Cli) {
    let fast = cli.fast;
    report::section("Ablation: settle intervals before judging a ways change");
    let epochs = if fast { 16 } else { 44 };
    let rows = dcat_bench::Runner::from_env().map(vec![1u32, 2, 4], |_, settle| {
        let cfg = DcatConfig {
            settle_intervals: settle,
            ..DcatConfig::default()
        };
        let mut plans = vec![VmPlan::always("mlr", 3, |s| {
            Box::new(Mlr::new(8 * MB, 70 + s))
        })];
        for i in 0..5 {
            plans.push(VmPlan::always(format!("lookbusy-{i}"), 3, |_| {
                Box::new(Lookbusy::new())
            }));
        }
        let r = run_scenario(PolicyKind::Dcat(cfg), paper_engine(fast), &plans, epochs);
        let ways = r.ways_series(0);
        let peak = ways.iter().copied().max().unwrap_or(0);
        let first_peak = ways.iter().position(|&w| w == peak).unwrap_or(0);
        vec![
            settle.to_string(),
            peak.to_string(),
            ways.last().unwrap().to_string(),
            first_peak.to_string(),
            format!("{:.2}", r.steady_ipc(0, (epochs / 4) as usize)),
        ]
    });
    report::table(
        &[
            "settle",
            "peak ways",
            "final ways",
            "epoch of peak",
            "steady IPC",
        ],
        &rows,
    );
}
