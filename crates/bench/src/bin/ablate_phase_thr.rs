//! Ablation: phase-change threshold sensitivity on a phased workload that
//! alternates between an MLR-like and an MLOAD-like phase.

use dcat::DcatConfig;
use dcat_bench::experiments::common::{paper_engine, MB};
use dcat_bench::report;
use dcat_bench::scenario::{run_scenario, PolicyKind, VmPlan};
use workloads::{phased::Phase, Lookbusy, Mload, Mlr, PhasedStream};

fn main() {
    dcat_bench::main_with(run);
}

fn run(cli: dcat_bench::Cli) {
    let fast = cli.fast;
    report::section("Ablation: phase-change threshold");
    let epochs = if fast { 20 } else { 48 };
    let rows = dcat_bench::Runner::from_env().map(vec![0.02f64, 0.10, 0.50], |_, thr| {
        let cfg = DcatConfig {
            phase_change_thr: thr,
            ..DcatConfig::default()
        };
        let mut plans = vec![VmPlan::always("phased", 3, |s| {
            Box::new(PhasedStream::cycling(vec![
                Phase {
                    stream: Box::new(Mlr::new(6 * MB, 80 + s)),
                    accesses: 400_000,
                },
                Phase {
                    stream: Box::new(Mload::new(30 * MB)),
                    accesses: 400_000,
                },
            ]))
        })];
        for i in 0..5 {
            plans.push(VmPlan::always(format!("lookbusy-{i}"), 3, |_| {
                Box::new(Lookbusy::new())
            }));
        }
        let r = run_scenario(PolicyKind::Dcat(cfg), paper_engine(fast), &plans, epochs);
        let changes: usize = r.reports.iter().filter(|e| e[0].phase_changed).count();
        vec![
            format!("{:.0}%", thr * 100.0),
            changes.to_string(),
            format!("{:.2}", r.steady_ipc(0, (epochs / 4) as usize)),
        ]
    });
    report::table(
        &["phase_change_thr", "phase changes detected", "steady IPC"],
        &rows,
    );
    report::say("(too small: spurious reclaims; too large: stale baselines)");
}
