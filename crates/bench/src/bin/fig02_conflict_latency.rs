//! Regenerates the paper's fig02 (see DESIGN.md experiment index).

fn main() {
    let fast = dcat_bench::Cli::from_env().fast;
    dcat_bench::experiments::fig02_conflict_latency::run(fast);
}
