//! Regenerates the paper's fig02 (see DESIGN.md experiment index).

fn main() {
    dcat_bench::main_with(run);
}

fn run(cli: dcat_bench::Cli) {
    let fast = cli.fast;
    dcat_bench::experiments::fig02_conflict_latency::run(fast);
}
