//! Regenerates the paper's fig02 (see DESIGN.md experiment index).

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    dcat_bench::experiments::fig02_conflict_latency::run(fast);
}
