//! Fleet-scale comparison of cluster cache policies (see DESIGN.md §15).
//!
//! Extra flag on top of the shared CLI: `--tenants N` runs one explicit
//! fleet size instead of the 100/1 000/10 000 ladder. Large fleets want
//! `--sample-sets 8 --jobs <cores>`.

fn main() {
    dcat_bench::main_with(run);
}

fn run(cli: dcat_bench::Cli) {
    let r = match tenants_flag() {
        Some(n) => dcat_bench::experiments::fleet_scale::run_at(&[n], cli.fast),
        None => dcat_bench::experiments::fleet_scale::run(cli.fast),
    };
    r.expect("fleet_scale: fatal resctrl error");
}

/// Parses `--tenants N` / `--tenants=N` from the raw argument list (the
/// shared [`dcat_bench::Cli`] ignores flags it does not know).
fn tenants_flag() -> Option<u32> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    let mut tenants = None;
    while let Some(arg) = it.next() {
        if arg == "--tenants" {
            tenants = it.next().and_then(|v| v.parse().ok());
        } else if let Some(v) = arg.strip_prefix("--tenants=") {
            tenants = v.parse().ok();
        }
    }
    tenants
}
