//! Regenerates Table 6 (Elasticsearch under YCSB workload C).

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    dcat_bench::experiments::tab_services::run_service(
        dcat_bench::experiments::tab_services::Service::Elasticsearch,
        fast,
    );
}
