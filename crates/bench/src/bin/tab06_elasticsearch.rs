//! Regenerates Table 6 (Elasticsearch under YCSB workload C).

fn main() {
    let fast = dcat_bench::Cli::from_env().fast;
    dcat_bench::experiments::tab_services::run_service(
        dcat_bench::experiments::tab_services::Service::Elasticsearch,
        fast,
    );
}
