//! Regenerates Table 6 (Elasticsearch under YCSB workload C).

fn main() {
    dcat_bench::main_with(run);
}

fn run(cli: dcat_bench::Cli) {
    let fast = cli.fast;
    dcat_bench::experiments::tab_services::run_service(
        dcat_bench::experiments::tab_services::Service::Elasticsearch,
        fast,
    );
}
