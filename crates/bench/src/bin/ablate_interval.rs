//! Ablation: controller interval length (the paper's configurable period;
//! too long reacts slowly, too short judges cold caches).

use dcat_bench::experiments::common::{paper_dcat, paper_engine, MB};
use dcat_bench::report;
use dcat_bench::scenario::{run_scenario, PolicyKind, VmPlan};
use workloads::{Lookbusy, Mlr};

fn main() {
    dcat_bench::main_with(run);
}

fn run(cli: dcat_bench::Cli) {
    let fast = cli.fast;
    report::section("Ablation: controller interval (cycles per epoch)");
    let budgets: &[u64] = if fast {
        &[1_000_000, 4_000_000]
    } else {
        &[2_000_000, 10_000_000, 30_000_000]
    };
    let rows = dcat_bench::Runner::from_env().map(budgets.to_vec(), |_, budget| {
        let mut cfg = paper_engine(fast);
        cfg.cycles_per_epoch = budget;
        // Fix the total simulated cycles across the sweep.
        let total_cycles: u64 = if fast { 24_000_000 } else { 360_000_000 };
        let epochs = (total_cycles / budget).max(4);
        let mut plans = vec![VmPlan::always("mlr", 3, |s| {
            Box::new(Mlr::new(8 * MB, 70 + s))
        })];
        for i in 0..5 {
            plans.push(VmPlan::always(format!("lookbusy-{i}"), 3, |_| {
                Box::new(Lookbusy::new())
            }));
        }
        let r = run_scenario(PolicyKind::Dcat(paper_dcat()), cfg, &plans, epochs);
        let ways = r.ways_series(0);
        let peak = ways.iter().copied().max().unwrap_or(0);
        let first_peak_epoch = ways.iter().position(|&w| w == peak).unwrap_or(0) as u64;
        vec![
            format!("{}M", budget / 1_000_000),
            epochs.to_string(),
            peak.to_string(),
            format!("{}M", first_peak_epoch * budget / 1_000_000),
            format!("{:.2}", r.steady_ipc(0, (epochs / 4) as usize)),
        ]
    });
    report::table(
        &[
            "interval",
            "epochs",
            "peak ways",
            "cycles to peak",
            "steady IPC",
        ],
        &rows,
    );
}
