//! Regenerates the paper's fig11 (see DESIGN.md experiment index).

fn main() {
    let fast = dcat_bench::Cli::from_env().fast;
    dcat_bench::experiments::fig11_latency_norm::run(fast);
}
