//! Regenerates the paper's fig11 (see DESIGN.md experiment index).

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    dcat_bench::experiments::fig11_latency_norm::run(fast);
}
