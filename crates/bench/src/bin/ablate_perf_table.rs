//! Ablation: per-phase performance-table reuse on vs. off (the paper's
//! Figure-12 mechanism), measured as epochs from restart to peak ways.

use dcat_bench::experiments::fig12_perf_table_reuse::run_with_reuse;
use dcat_bench::report;

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    report::section("Ablation: performance-table reuse");
    let with = run_with_reuse(fast, true);
    let without = run_with_reuse(fast, false);
    report::table(
        &[
            "perf-table reuse",
            "1st run epochs to peak",
            "2nd run epochs to peak",
        ],
        &[
            vec![
                "enabled".into(),
                with.first_run_epochs.to_string(),
                with.second_run_epochs.to_string(),
            ],
            vec![
                "disabled".into(),
                without.first_run_epochs.to_string(),
                without.second_run_epochs.to_string(),
            ],
        ],
    );
    println!("(with reuse, the second run should converge much faster)");
}
