//! Ablation: per-phase performance-table reuse on vs. off (the paper's
//! Figure-12 mechanism), measured as epochs from restart to peak ways.

use dcat_bench::experiments::fig12_perf_table_reuse::run_with_reuse;
use dcat_bench::report;

fn main() {
    dcat_bench::main_with(run);
}

fn run(cli: dcat_bench::Cli) {
    let fast = cli.fast;
    report::section("Ablation: performance-table reuse");
    let runs = dcat_bench::Runner::from_env()
        .map(vec![true, false], |_, reuse| run_with_reuse(fast, reuse));
    let (with, without) = (runs[0].clone(), runs[1].clone());
    report::table(
        &[
            "perf-table reuse",
            "1st run epochs to peak",
            "2nd run epochs to peak",
        ],
        &[
            vec![
                "enabled".into(),
                with.first_run_epochs.to_string(),
                with.second_run_epochs.to_string(),
            ],
            vec![
                "disabled".into(),
                without.first_run_epochs.to_string(),
                without.second_run_epochs.to_string(),
            ],
        ],
    );
    report::say("(with reuse, the second run should converge much faster)");
}
