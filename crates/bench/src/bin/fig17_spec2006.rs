//! Regenerates Figure 17 and Table 3 (SPEC CPU2006 suite).

fn main() {
    let fast = dcat_bench::Cli::from_env().fast;
    dcat_bench::experiments::fig17_spec2006::run(fast);
}
