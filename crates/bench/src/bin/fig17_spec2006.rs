//! Regenerates Figure 17 and Table 3 (SPEC CPU2006 suite).

fn main() {
    dcat_bench::main_with(run);
}

fn run(cli: dcat_bench::Cli) {
    let fast = cli.fast;
    dcat_bench::experiments::fig17_spec2006::run(fast);
}
