//! Regenerates Figure 17 and Table 3 (SPEC CPU2006 suite).

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    dcat_bench::experiments::fig17_spec2006::run(fast);
}
