//! Ablation: max-fairness vs. max-performance free-pool distribution
//! (the design choice of paper Section 3.5) on the Figure-14 scenario.

use dcat::DcatConfig;
use dcat_bench::experiments::fig14_two_receivers::run_with;
use dcat_bench::report;

fn main() {
    dcat_bench::main_with(run);
}

fn run(cli: dcat_bench::Cli) {
    let fast = cli.fast;
    report::section("Ablation: allocation policy (two receivers + late-comer)");
    let runs = dcat_bench::Runner::from_env().map(
        vec![DcatConfig::default(), DcatConfig::max_performance()],
        |_, cfg| run_with(cfg, fast),
    );
    let (fair, perf) = (runs[0].clone(), runs[1].clone());
    report::table(
        &[
            "policy",
            "MLR-8MB final ways",
            "MLR-12MB final ways",
            "total norm IPC",
        ],
        &[
            vec![
                "max-fairness".into(),
                fair.ways_8mb.last().unwrap().to_string(),
                fair.ways_12mb.last().unwrap().to_string(),
                format!("{:.2}", fair.total_norm_ipc),
            ],
            vec![
                "max-performance".into(),
                perf.ways_8mb.last().unwrap().to_string(),
                perf.ways_12mb.last().unwrap().to_string(),
                format!("{:.2}", perf.total_norm_ipc),
            ],
        ],
    );
}
