//! Runs every figure/table reproduction (the full evaluation).
//!
//! With `--jobs N` the experiments fan out across worker threads; the
//! report bytes are identical to a `--jobs 1` run because each
//! experiment's output is captured and replayed in registry order.

use dcat_bench::experiments::registry;
use dcat_bench::{Cli, Runner};

fn main() {
    dcat_bench::main_with(run);
}

fn run(cli: Cli) {
    Runner::from_env().map(registry(), |_, exp| (exp.run)(cli.fast));
}
