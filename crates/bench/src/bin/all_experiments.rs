//! Runs every figure/table reproduction in sequence (the full evaluation).

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    use dcat_bench::experiments as e;
    e::fig01_interference::run(fast);
    e::fig02_conflict_latency::run(fast);
    e::fig03_set_histogram::run(fast);
    e::fig05_phase_metric::run(fast);
    e::fig07_lifecycle::run(fast);
    e::fig08_miss_threshold::run(fast);
    e::fig09_ipc_threshold::run(fast);
    e::fig10_dynamic_alloc::run(fast);
    e::fig11_latency_norm::run(fast);
    e::fig12_perf_table_reuse::run(fast);
    e::fig13_streaming::run(fast);
    e::fig14_two_receivers::run(fast);
    e::fig15_mixed::run(fast);
    e::fig17_spec2006::run(fast);
    e::tab_services::run(fast);
}
