//! Diagnostic: per-epoch decisions for the Figure-15 scenario.

use dcat_bench::experiments::common::{paper_dcat, paper_engine, MB};
use dcat_bench::scenario::{run_scenario, PolicyKind, VmPlan};
use workloads::{Lookbusy, Mload, Mlr};

fn main() {
    dcat_bench::main_with(run);
}

fn run(_cli: dcat_bench::Cli) {
    let mut plans = vec![
        VmPlan::always("mlr-8mb", 3, |s| Box::new(Mlr::new(8 * MB, 400 + s))),
        VmPlan::always("mload-60mb", 3, |_| Box::new(Mload::new(60 * MB))),
    ];
    for i in 0..5 {
        plans.push(VmPlan::always(format!("lookbusy-{i}"), 2, |_| {
            Box::new(Lookbusy::new())
        }));
    }
    let r = run_scenario(
        PolicyKind::Dcat(paper_dcat()),
        paper_engine(false),
        &plans,
        24,
    );
    for (e, rep) in r.reports.iter().enumerate() {
        println!(
            "e{e:>2} MLR {:<9} w={:>2} n={:<5} | MLOAD {:<9} w={:>2} n={:<5} miss={:.2} ipc={:.4}",
            rep[0].class.to_string(),
            rep[0].ways,
            rep[0].norm_ipc.map_or("-".into(), |v| format!("{v:.2}")),
            rep[1].class.to_string(),
            rep[1].ways,
            rep[1].norm_ipc.map_or("-".into(), |v| format!("{v:.2}")),
            rep[1].llc_miss_rate,
            rep[1].ipc,
        );
    }
}
