//! Regenerates the paper's fig12 (see DESIGN.md experiment index).

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    dcat_bench::experiments::fig12_perf_table_reuse::run(fast);
}
