//! Regenerates the paper's fig12 (see DESIGN.md experiment index).

fn main() {
    let fast = dcat_bench::Cli::from_env().fast;
    dcat_bench::experiments::fig12_perf_table_reuse::run(fast);
}
