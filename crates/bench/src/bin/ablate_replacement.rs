//! Ablation: LLC replacement/insertion policy (see the module docs).

fn main() {
    let fast = dcat_bench::Cli::from_env().fast;
    dcat_bench::experiments::ablate_replacement::run(fast);
}
