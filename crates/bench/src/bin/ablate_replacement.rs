//! Ablation: LLC replacement/insertion policy (see the module docs).

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    dcat_bench::experiments::ablate_replacement::run(fast);
}
