//! Ablation: LLC replacement/insertion policy (see the module docs).

fn main() {
    dcat_bench::main_with(run);
}

fn run(cli: dcat_bench::Cli) {
    let fast = cli.fast;
    dcat_bench::experiments::ablate_replacement::run(fast);
}
