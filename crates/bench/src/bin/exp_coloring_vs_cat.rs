//! Extension experiment: CAT vs. OS page coloring at equal capacity.

fn main() {
    let fast = dcat_bench::Cli::from_env().fast;
    dcat_bench::experiments::exp_coloring::run(fast);
}
