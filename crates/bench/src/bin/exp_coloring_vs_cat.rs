//! Extension experiment: CAT vs. OS page coloring at equal capacity.

fn main() {
    dcat_bench::main_with(run);
}

fn run(cli: dcat_bench::Cli) {
    let fast = cli.fast;
    dcat_bench::experiments::exp_coloring::run(fast);
}
