//! Extension experiment: CAT vs. OS page coloring at equal capacity.

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    dcat_bench::experiments::exp_coloring::run(fast);
}
