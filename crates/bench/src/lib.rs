//! Experiment harness regenerating every table and figure of the dCat
//! paper.
//!
//! Each `fig*`/`tab*` binary under `src/bin/` reproduces one table or
//! figure of the evaluation (the mapping is indexed in the repository's
//! `DESIGN.md`), printing the same rows/series the paper reports. The
//! shared machinery lives here:
//!
//! * [`scenario`] — declarative multi-VM scenarios with workload start/stop
//!   schedules, run under any of the three policies the paper compares
//!   (shared cache, static CAT, dCat),
//! * [`report`] — plain-text table/series formatting, geometric means,
//!   and percentiles,
//! * [`experiments`] — one module per figure/table, each exposing a
//!   `run(fast)` entry point (binaries call `run(false)`; integration
//!   tests call scaled-down variants).

pub mod experiments;
pub mod fleet;
pub mod perf;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod timing;

pub use fleet::{run_fleet, FleetConfig, FleetPolicy, FleetResult, TenantSpec};
pub use runner::{main_with, Cli, Runner};
pub use scenario::{PolicyKind, RunResult, ScheduleItem, VmPlan};
