//! Shared CLI parsing and the deterministic parallel sweep runner.
//!
//! Every experiment binary accepts `--fast` and `--jobs N`. `--jobs`
//! sets a process-global width consumed by [`Runner::from_env`]; sweeps
//! inside experiments fan their scenario runs out through
//! [`Runner::map`], which combines [`host::Pool`]'s index-ordered
//! execution with [`crate::report::capture`] so each task's printed
//! output is replayed in task order. The result: the bytes written to
//! stdout are identical for any jobs width, and `--jobs 1` is simply the
//! degenerate inline case.

use std::sync::atomic::{AtomicUsize, Ordering};

use host::Pool;

use crate::report;

static JOBS: AtomicUsize = AtomicUsize::new(1);

/// Sets the process-global sweep width (clamped to at least 1).
pub fn set_jobs(n: usize) {
    JOBS.store(n.max(1), Ordering::Relaxed);
}

/// The process-global sweep width.
pub fn jobs() -> usize {
    JOBS.load(Ordering::Relaxed).max(1)
}

/// Flags shared by every experiment binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cli {
    /// Scaled-down epoch counts and cycle budgets (for tests and CI).
    pub fast: bool,
    /// Parallel sweep width.
    pub jobs: usize,
}

impl Cli {
    /// Parses `std::env::args()` and installs `--jobs` globally.
    pub fn from_env() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        Self::parse(&args)
    }

    /// Parses a flag list (`--fast`, `--jobs N`, `--jobs=N`); unknown
    /// flags are ignored so binaries can add their own. Installs the
    /// parsed width via [`set_jobs`].
    pub fn parse(args: &[String]) -> Self {
        let mut fast = false;
        let mut jobs = 1usize;
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            if arg == "--fast" {
                fast = true;
            } else if arg == "--jobs" {
                if let Some(n) = it.next().and_then(|v| v.parse().ok()) {
                    jobs = n;
                }
            } else if let Some(v) = arg.strip_prefix("--jobs=") {
                if let Ok(n) = v.parse() {
                    jobs = n;
                }
            }
        }
        let cli = Cli {
            fast,
            jobs: jobs.max(1),
        };
        set_jobs(cli.jobs);
        cli
    }
}

/// Deterministic parallel sweep executor.
pub struct Runner {
    pool: Pool,
}

impl Runner {
    /// A runner at the process-global `--jobs` width.
    pub fn from_env() -> Self {
        Runner::new(jobs())
    }

    /// A runner at an explicit width (clamped to at least 1).
    pub fn new(jobs: usize) -> Self {
        Runner {
            pool: Pool::new(jobs),
        }
    }

    /// The runner's width.
    pub fn jobs(&self) -> usize {
        self.pool.jobs()
    }

    /// Runs `f` over every item, in parallel up to the runner's width,
    /// and returns results in **item order**. Anything a task says
    /// through [`crate::report`] is captured and replayed in item order
    /// after the task completes, so stdout bytes never depend on
    /// completion order or jobs width.
    pub fn map<I, T, F>(&self, items: Vec<I>, f: F) -> Vec<T>
    where
        I: Send,
        T: Send,
        F: Fn(usize, I) -> T + Sync,
    {
        let chunks = self
            .pool
            .map(items, |i, item| report::capture(|| f(i, item)));
        chunks
            .into_iter()
            .map(|(value, out)| {
                report::emit_raw(&out);
                value
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn cli_parses_flags() {
        assert_eq!(
            Cli::parse(&argv(&[])),
            Cli {
                fast: false,
                jobs: 1
            }
        );
        assert_eq!(
            Cli::parse(&argv(&["--fast", "--jobs", "4"])),
            Cli {
                fast: true,
                jobs: 4
            }
        );
        assert_eq!(
            Cli::parse(&argv(&["--jobs=8"])),
            Cli {
                fast: false,
                jobs: 8
            }
        );
        // Degenerate values clamp, junk is ignored.
        assert_eq!(
            Cli::parse(&argv(&["--jobs", "0", "--mystery"])),
            Cli {
                fast: false,
                jobs: 1
            }
        );
        set_jobs(1); // do not leak the global into other tests
    }

    #[test]
    fn runner_output_is_byte_identical_across_widths() {
        let run = |jobs: usize| {
            report::capture(|| {
                let r = Runner::new(jobs);
                let sums = r.map((0..24u64).collect(), |i, seed| {
                    let mut rng = smallrng::SmallRng::seed_from_u64(seed);
                    let sum = (0..500)
                        .map(|_| rng.next_u64())
                        .fold(0u64, u64::wrapping_add);
                    report::say(format!("task {i}: {sum}"));
                    sum
                });
                sums
            })
        };
        let (v1, out1) = run(1);
        let (v4, out4) = run(4);
        assert_eq!(v1, v4);
        assert_eq!(out1, out4);
        assert!(out1.starts_with("task 0: "));
        assert_eq!(out1.lines().count(), 24);
    }
}
