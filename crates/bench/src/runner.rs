//! Shared CLI parsing and the deterministic parallel sweep runner.
//!
//! Every experiment binary accepts `--fast` and `--jobs N`. `--jobs`
//! sets a process-global width consumed by [`Runner::from_env`]; sweeps
//! inside experiments fan their scenario runs out through
//! [`Runner::map`], which combines [`host::Pool`]'s index-ordered
//! execution with [`crate::report::capture`] so each task's printed
//! output is replayed in task order. The result: the bytes written to
//! stdout are identical for any jobs width, and `--jobs 1` is simply the
//! degenerate inline case.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use dcat_obs::MetricsSink;
use host::Pool;

use crate::report;

static JOBS: AtomicUsize = AtomicUsize::new(1);

/// Sets the process-global sweep width (clamped to at least 1).
pub fn set_jobs(n: usize) {
    JOBS.store(n.max(1), Ordering::Relaxed);
}

/// The process-global sweep width.
pub fn jobs() -> usize {
    JOBS.load(Ordering::Relaxed).max(1)
}

/// Process-global LLC set-sampling stride (0 or 1 = full fidelity).
static SAMPLE_SETS: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-global LLC sampling stride (`--sample-sets N`).
pub fn set_sample_sets(n: usize) {
    SAMPLE_SETS.store(n, Ordering::Relaxed);
}

/// The LLC fidelity selected on the command line: `Full` unless
/// `--sample-sets N` with `N > 1` was given.
pub fn llc_fidelity() -> llc_sim::SimFidelity {
    match SAMPLE_SETS.load(Ordering::Relaxed) {
        0 | 1 => llc_sim::SimFidelity::Full,
        n => llc_sim::SimFidelity::Sampled {
            one_in: n.min(u32::MAX as usize) as u32,
        },
    }
}

/// Flags shared by every experiment binary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cli {
    /// Scaled-down epoch counts and cycle budgets (for tests and CI).
    pub fast: bool,
    /// Parallel sweep width.
    pub jobs: usize,
    /// Where to export the process-root metrics snapshot on exit
    /// (Prometheus text, or JSONL when the path ends in `.jsonl`).
    pub metrics_out: Option<PathBuf>,
    /// Where to write the run's `dcat-frames/v1` stream (for experiments
    /// that export one; others ignore it).
    pub frames_out: Option<PathBuf>,
    /// LLC set-sampling stride (`--sample-sets N`); 0 means full
    /// fidelity. Values of 1 also degenerate to full fidelity.
    pub sample_sets: usize,
}

impl Cli {
    /// Parses `std::env::args()` and installs `--jobs` globally.
    pub fn from_env() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        Self::parse(&args)
    }

    /// Parses a flag list (`--fast`, `--jobs N`, `--jobs=N`,
    /// `--metrics-out PATH`, `--frames-out PATH`, `--sample-sets N`);
    /// unknown flags are ignored so binaries can add their own. Installs
    /// the parsed width via [`set_jobs`] and the sampling stride via
    /// [`set_sample_sets`].
    pub fn parse(args: &[String]) -> Self {
        let mut fast = false;
        let mut jobs = 1usize;
        let mut metrics_out = None;
        let mut frames_out = None;
        let mut sample_sets = 0usize;
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            if arg == "--fast" {
                fast = true;
            } else if arg == "--jobs" {
                if let Some(n) = it.next().and_then(|v| v.parse().ok()) {
                    jobs = n;
                }
            } else if let Some(v) = arg.strip_prefix("--jobs=") {
                if let Ok(n) = v.parse() {
                    jobs = n;
                }
            } else if arg == "--metrics-out" {
                metrics_out = it.next().map(PathBuf::from);
            } else if let Some(v) = arg.strip_prefix("--metrics-out=") {
                metrics_out = Some(PathBuf::from(v));
            } else if arg == "--frames-out" {
                frames_out = it.next().map(PathBuf::from);
            } else if let Some(v) = arg.strip_prefix("--frames-out=") {
                frames_out = Some(PathBuf::from(v));
            } else if arg == "--sample-sets" {
                if let Some(n) = it.next().and_then(|v| v.parse().ok()) {
                    sample_sets = n;
                }
            } else if let Some(v) = arg.strip_prefix("--sample-sets=") {
                if let Ok(n) = v.parse() {
                    sample_sets = n;
                }
            }
        }
        let cli = Cli {
            fast,
            jobs: jobs.max(1),
            metrics_out,
            frames_out,
            sample_sets,
        };
        set_jobs(cli.jobs);
        set_sample_sets(cli.sample_sets);
        cli
    }
}

/// Standard experiment `main`: parses the [`Cli`], runs `body`, then
/// honors `--metrics-out` by exporting everything the run [`report::record`]ed
/// into the process-root registry.
///
/// # Panics
///
/// Panics if the metrics file cannot be written.
pub fn main_with(body: impl FnOnce(Cli)) {
    let cli = Cli::from_env();
    let metrics_out = cli.metrics_out.clone();
    body(cli);
    if let Some(path) = metrics_out {
        let snap = report::take_root_metrics();
        if let Err(e) = dcat_obs::FileSink::new(&path).export(&snap) {
            panic!("metrics export to {}: {e}", path.display());
        }
    }
}

/// Deterministic parallel sweep executor.
pub struct Runner {
    pool: Pool,
}

impl Runner {
    /// A runner at the process-global `--jobs` width.
    pub fn from_env() -> Self {
        Runner::new(jobs())
    }

    /// A runner at an explicit width (clamped to at least 1).
    pub fn new(jobs: usize) -> Self {
        Runner {
            pool: Pool::new(jobs),
        }
    }

    /// The runner's width.
    pub fn jobs(&self) -> usize {
        self.pool.jobs()
    }

    /// Runs `f` over every item, in parallel up to the runner's width,
    /// and returns results in **item order**. Anything a task says
    /// through [`crate::report`] — text *and* recorded metrics — is
    /// captured and replayed in item order after the task completes, so
    /// stdout bytes and exported metric snapshots never depend on
    /// completion order or jobs width.
    pub fn map<I, T, F>(&self, items: Vec<I>, f: F) -> Vec<T>
    where
        I: Send,
        T: Send,
        F: Fn(usize, I) -> T + Sync,
    {
        let chunks = self
            .pool
            .map(items, |i, item| report::capture_obs(|| f(i, item)));
        chunks
            .into_iter()
            .map(|(value, out, metrics)| {
                report::emit_raw(&out);
                report::emit_obs(&metrics);
                value
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn cli_parses_flags() {
        let base = Cli {
            fast: false,
            jobs: 1,
            metrics_out: None,
            frames_out: None,
            sample_sets: 0,
        };
        assert_eq!(Cli::parse(&argv(&[])), base);
        assert_eq!(
            Cli::parse(&argv(&["--fast", "--jobs", "4"])),
            Cli {
                fast: true,
                jobs: 4,
                ..base.clone()
            }
        );
        assert_eq!(
            Cli::parse(&argv(&["--jobs=8"])),
            Cli {
                jobs: 8,
                ..base.clone()
            }
        );
        assert_eq!(
            Cli::parse(&argv(&["--metrics-out", "m.prom"])),
            Cli {
                metrics_out: Some(PathBuf::from("m.prom")),
                ..base.clone()
            }
        );
        assert_eq!(
            Cli::parse(&argv(&["--metrics-out=target/m.jsonl"])),
            Cli {
                metrics_out: Some(PathBuf::from("target/m.jsonl")),
                ..base.clone()
            }
        );
        assert_eq!(
            Cli::parse(&argv(&["--frames-out", "target/frames.jsonl"])),
            Cli {
                frames_out: Some(PathBuf::from("target/frames.jsonl")),
                ..base.clone()
            }
        );
        assert_eq!(
            Cli::parse(&argv(&["--frames-out=f.jsonl"])),
            Cli {
                frames_out: Some(PathBuf::from("f.jsonl")),
                ..base.clone()
            }
        );
        assert_eq!(
            Cli::parse(&argv(&["--sample-sets", "8"])),
            Cli {
                sample_sets: 8,
                ..base.clone()
            }
        );
        assert_eq!(
            Cli::parse(&argv(&["--sample-sets=16"])),
            Cli {
                sample_sets: 16,
                ..base.clone()
            }
        );
        // Degenerate values clamp, junk is ignored.
        assert_eq!(Cli::parse(&argv(&["--jobs", "0", "--mystery"])), base);
        set_jobs(1); // do not leak the globals into other tests
        set_sample_sets(0);
    }

    #[test]
    fn sample_sets_maps_to_fidelity() {
        set_sample_sets(0);
        assert_eq!(llc_fidelity(), llc_sim::SimFidelity::Full);
        set_sample_sets(1);
        assert_eq!(llc_fidelity(), llc_sim::SimFidelity::Full);
        set_sample_sets(8);
        assert_eq!(llc_fidelity(), llc_sim::SimFidelity::Sampled { one_in: 8 });
        set_sample_sets(0);
    }

    #[test]
    fn runner_output_is_byte_identical_across_widths() {
        let run = |jobs: usize| {
            report::capture(|| {
                let r = Runner::new(jobs);
                let sums = r.map((0..24u64).collect(), |i, seed| {
                    let mut rng = smallrng::SmallRng::seed_from_u64(seed);
                    let sum = (0..500)
                        .map(|_| rng.next_u64())
                        .fold(0u64, u64::wrapping_add);
                    report::say(format!("task {i}: {sum}"));
                    sum
                });
                sums
            })
        };
        let (v1, out1) = run(1);
        let (v4, out4) = run(4);
        assert_eq!(v1, v4);
        assert_eq!(out1, out4);
        assert!(out1.starts_with("task 0: "));
        assert_eq!(out1.lines().count(), 24);
    }

    #[test]
    fn runner_metrics_are_byte_identical_across_widths() {
        // Worker metrics funnel through capture_obs/emit_obs; the merged
        // snapshot (and its rendered exports) must not depend on width.
        let run = |jobs: usize| {
            let ((), _text, snap) = report::capture_obs(|| {
                let r = Runner::new(jobs);
                let _ = r.map((0..16u64).collect(), |i, seed| {
                    report::record(|reg| {
                        reg.counter_add("tasks_total", &[], 1);
                        let label = if seed % 2 == 0 { "even" } else { "odd" };
                        reg.counter_add("tasks_by_parity", &[("parity", label)], 1);
                        reg.histogram_observe(
                            "task_index",
                            &[],
                            dcat_obs::DEFAULT_STEP_BUCKETS,
                            i as u64,
                        );
                    });
                });
            });
            snap
        };
        let a = run(1);
        let b = run(4);
        assert_eq!(a, b);
        assert_eq!(a.to_prometheus(), b.to_prometheus());
        assert_eq!(
            a.get("tasks_total", &[]),
            Some(&dcat_obs::MetricValue::Counter(16))
        );
    }
}
