//! Golden Prometheus-text snapshot for the fig07 lifecycle run.
//!
//! The metrics registry is logical-clock only (counters of epochs and
//! pipeline events, span-step histograms, way gauges), so the rendered
//! export is exact-compare stable across machines and `--jobs` widths —
//! any diff means the pipeline's observable behavior changed.
//!
//! To regenerate after an intentional controller or metric-catalog
//! change:
//!
//! ```sh
//! DCAT_BLESS=1 cargo test -p dcat-bench --test golden_metrics
//! ```

use std::path::PathBuf;

use dcat_bench::experiments::fig07_lifecycle;
use dcat_bench::report;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("DCAT_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir has a parent"))
            .expect("create golden dir");
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden {} ({e}); run with DCAT_BLESS=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        actual,
        expected,
        "metrics snapshot diverged from {}; if the change is intentional, \
         re-bless with DCAT_BLESS=1",
        path.display()
    );
}

#[test]
fn fig07_metrics_snapshot_matches_golden() {
    let (_r, _text, snap) = report::capture_obs(|| fig07_lifecycle::run_timeline(false, true));
    let rendered = snap.to_prometheus();
    // Structural sanity before the byte compare: the export must pass
    // the same validator `obs-dump --check` applies.
    dcat_obs::check_prometheus(&rendered).expect("fig07 export must validate");
    check_golden("fig07_metrics.prom", &rendered);
}
