//! Fleet determinism: a fleet run must be byte-identical at any
//! `--jobs` width — reports, decision traces, and recorded metrics all
//! come out the same whether hosts step inline or across four workers.
//!
//! One test function on purpose: the jobs width is a process global, so
//! concurrent test threads must not interleave width changes.

use dcat_bench::fleet::{run_fleet, FleetConfig, FleetPolicy};
use dcat_bench::{report, runner};

fn smoke_config() -> FleetConfig {
    let mut cfg = FleetConfig::new(48, true);
    cfg.epochs = 6;
    cfg.cycles_per_epoch = 60_000;
    cfg.llc_fidelity = llc_sim::SimFidelity::Sampled { one_in: 8 };
    cfg
}

#[test]
fn fleet_outputs_are_byte_identical_across_jobs_widths() {
    let cfg = smoke_config();
    for policy in [FleetPolicy::DcatMaxFairness, FleetPolicy::Lfoc] {
        let mut outputs = Vec::new();
        for jobs in [1usize, 4] {
            runner::set_jobs(jobs);
            let (result, text, snap) = report::capture_obs(|| run_fleet(policy, &cfg));
            let result = result.expect("smoke fleet runs");
            outputs.push((result.serialize(), result.trace, text, snap.to_prometheus()));
        }
        runner::set_jobs(1);
        let (a, b) = (&outputs[0], &outputs[1]);
        assert_eq!(a.0, b.0, "{}: report bytes differ", policy.label());
        assert_eq!(a.1, b.1, "{}: decision trace differs", policy.label());
        assert_eq!(a.2, b.2, "{}: captured output differs", policy.label());
        assert_eq!(a.3, b.3, "{}: metrics differ", policy.label());
    }
}
