//! Golden decision-trace snapshots for the two lifecycle figures.
//!
//! Each trace is the controller's observable behavior — one line per
//! epoch in which any domain's `(class, ways)` changed — rendered by
//! `report::decision_trace`. The traces contain no floats and no timing,
//! so they are exact-compare stable across machines and `--jobs` widths.
//!
//! To regenerate after an intentional controller or seeding change:
//!
//! ```sh
//! DCAT_BLESS=1 cargo test -p dcat-bench --test golden_traces
//! ```

use std::path::PathBuf;

use dcat_bench::experiments::{fig07_lifecycle, fig13_streaming};
use dcat_bench::report;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("DCAT_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir has a parent"))
            .expect("create golden dir");
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden {} ({e}); run with DCAT_BLESS=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        actual,
        expected,
        "decision trace diverged from {}; if the change is intentional, \
         re-bless with DCAT_BLESS=1",
        path.display()
    );
}

#[test]
fn fig07_friendly_lifecycle_matches_golden() {
    let r = fig07_lifecycle::run_timeline(false, true);
    check_golden("fig07_friendly.trace", &report::decision_trace(&r.reports));
}

#[test]
fn fig07_streaming_lifecycle_matches_golden() {
    let r = fig07_lifecycle::run_timeline(true, true);
    check_golden("fig07_streaming.trace", &report::decision_trace(&r.reports));
}

#[test]
fn fig13_streaming_detection_matches_golden() {
    let r = fig13_streaming::run_result(true);
    check_golden("fig13_streaming.trace", &report::decision_trace(&r.reports));
}
