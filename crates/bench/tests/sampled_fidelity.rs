//! Accuracy and determinism of `SimFidelity::Sampled` on a fig10-style
//! scenario.
//!
//! Sampled simulation (`--sample-sets 8`) models one LLC set in eight
//! and classifies the rest with a per-core estimator, so its miss *rate*
//! carries a sampling error. The contract documented in EXPERIMENTS.md
//! is: on the fig10 workloads the whole-run LLC miss rate of every VM
//! stays within ±0.05 (absolute) of full fidelity. Determinism, on the
//! other hand, is *exact*: the estimator is integer arithmetic over
//! monotonic counters, so a sampled run must serialize byte-identically
//! whatever `--jobs` width produced it.
//!
//! Everything runs inside one `#[test]` because the sampling stride is a
//! process global (`runner::set_sample_sets`), like the jobs width.

use dcat_bench::experiments::fig10_dynamic_alloc;
use dcat_bench::{report, runner, RunResult, Runner};

const MB: u64 = 1024 * 1024;

/// Documented sampled-mode accuracy bound (absolute miss-rate error).
const EPSILON: f64 = 0.05;

/// Whole-run LLC miss rate of `vm`.
fn miss_rate(r: &RunResult, vm: usize) -> f64 {
    let (miss, refs) = r.epochs.iter().fold((0u64, 0u64), |(m, n), e| {
        (m + e[vm].llc_miss, n + e[vm].llc_ref)
    });
    if refs == 0 {
        0.0
    } else {
        miss as f64 / refs as f64
    }
}

/// Runs the fig10 4 MB + 8 MB working-set points at the given width and
/// returns the serialized results (the byte-identity oracle).
fn sweep_at(jobs: usize) -> Vec<String> {
    runner::set_jobs(jobs);
    let (serials, _text, _snap) = report::capture_obs(|| {
        Runner::from_env().map(vec![4 * MB, 8 * MB], |_, wss| {
            let (_, result) = fig10_dynamic_alloc::run_one(wss, true);
            result.serialize()
        })
    });
    serials
}

#[test]
fn sampled_mode_is_accurate_and_jobs_deterministic() {
    // Full-fidelity reference for the 8 MB working-set point.
    runner::set_sample_sets(0);
    runner::set_jobs(1);
    let full = report::capture_obs(|| fig10_dynamic_alloc::run_one(8 * MB, true).1).0;
    let n_vms = full.epochs[0].len();

    // Sampled run of the same point.
    runner::set_sample_sets(8);
    let sampled = report::capture_obs(|| fig10_dynamic_alloc::run_one(8 * MB, true).1).0;

    for vm in 0..n_vms {
        let f = miss_rate(&full, vm);
        let s = miss_rate(&sampled, vm);
        assert!(
            (f - s).abs() <= EPSILON,
            "vm {vm}: sampled miss rate {s:.4} deviates from full {f:.4} \
             by more than ±{EPSILON}"
        );
    }

    // Exact determinism: the sampled sweep serializes byte-identically
    // at --jobs 1 and --jobs 4.
    let narrow = sweep_at(1);
    let wide = sweep_at(4);
    assert!(!narrow.concat().is_empty(), "sweep produced no stats");
    assert_eq!(
        narrow, wide,
        "sampled-mode stats differ between --jobs 1 and --jobs 4"
    );

    // Do not leak the globals into other tests in this binary.
    runner::set_sample_sets(0);
    runner::set_jobs(1);
}
