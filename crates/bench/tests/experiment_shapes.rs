//! Qualitative-shape assertions for the paper reproductions, run on the
//! scaled-down (`fast`) experiment variants so the suite stays quick.
//!
//! These tests encode the paper's *claims*, not its absolute numbers: who
//! wins, what saturates, what gets detected.

use dcat_bench::experiments as e;

#[test]
fn fig02_reduced_associativity_hurts_and_hugepages_help() {
    let (xeon_d, xeon_e5) = e::fig02_conflict_latency::run(true);
    // A capacity-matched 2-way partition is much worse than the full cache.
    assert!(xeon_d.cat_4k > 1.3 * xeon_d.full_4k);
    assert!(xeon_e5.cat_4k > 1.2 * xeon_e5.full_4k);
    // Huge pages recover Xeon-D fully (one page covers the working set)...
    assert!(xeon_d.cat_huge < 1.1 * xeon_d.full_4k);
    // ...but on Xeon-E5 the 4.5 MB set spans three pages and still pays.
    assert!(xeon_e5.cat_huge > xeon_e5.full_4k);
    assert!(xeon_e5.cat_huge < xeon_e5.cat_4k);
}

#[test]
fn fig03_conflict_fractions_match_paper_pattern() {
    let rows = e::fig03_set_histogram::run(true);
    let by_label = |needle: &str| {
        rows.iter()
            .find(|r| r.label.contains(needle))
            .unwrap_or_else(|| panic!("missing {needle}"))
    };
    // The paper reports roughly 30% of sets with 3+ lines for 4 KiB pages.
    assert!(by_label("Xeon-D 4KB").frac_3_plus > 0.15);
    assert!(by_label("Xeon-E5 4KB").frac_3_plus > 0.15);
    // Hugepages drive Xeon-D to zero conflicting sets.
    assert_eq!(by_label("Xeon-D hugepage").frac_3_plus, 0.0);
    // Xeon-E5's 3-page working set still conflicts, but less than 4 KiB.
    let e5_huge = by_label("Xeon-E5 hugepage").frac_3_plus;
    assert!(e5_huge > 0.0 && e5_huge < by_label("Xeon-E5 4KB").frac_3_plus);
}

#[test]
fn fig05_phase_signature_is_flat_across_allocations() {
    let series = e::fig05_phase_metric::run(true);
    for s in &series {
        assert!(
            s.relative_spread() < 0.02,
            "{} signature varies {:.1}% with allocation",
            s.label,
            s.relative_spread() * 100.0
        );
    }
    // And the signature distinguishes MLR from MLOAD.
    let mlr = series
        .iter()
        .find(|s| s.label.starts_with("MLR-6"))
        .unwrap();
    let mload = series
        .iter()
        .find(|s| s.label.starts_with("MLOAD-8"))
        .unwrap();
    let diff = (mlr.points[0].1 - mload.points[0].1).abs() / mlr.points[0].1;
    assert!(diff > 0.2, "MLR and MLOAD signatures too close");
}

#[test]
fn fig07_lifecycle_reclaims_grows_and_donates() {
    let lc = e::fig07_lifecycle::run(true);
    // Idle at first -> donated to 1 way at some point before the start.
    assert!(lc.friendly_ways.contains(&1));
    // Grew beyond the 3-way baseline while running.
    assert!(lc.friendly_ways.iter().any(|&w| w > 3));
    // Donated again after the workload stopped.
    assert_eq!(*lc.friendly_ways.last().unwrap(), 1);
    assert_eq!(*lc.streaming_ways.last().unwrap(), 1);
}

#[test]
fn fig13_streaming_is_detected_and_defunded() {
    let row = e::fig13_streaming::run(true);
    assert!(row.peak_ways >= 6, "should have probed toward the cap");
    assert!(row.peak_ways <= 10, "must not grow past the streaming cap");
    assert_eq!(row.final_ways, 1, "streaming VM ends at the minimum");
}

#[test]
fn fig15_mload_released_and_mlr_absorbed() {
    let row = e::fig15_mixed::run(true);
    // MLOAD was eventually dropped to the minimum...
    assert_eq!(*row.mload_ways.last().unwrap(), 1);
    // ...and MLR ended above its 3-way baseline.
    assert!(*row.mlr_ways.last().unwrap() > 3);
    // The streaming neighbor is not hurt by dCat relative to static CAT.
    assert!(row.mload_ipc_ratio > 0.9);
}

#[test]
fn fig17_subset_shows_the_three_classes() {
    let rows = e::fig17_spec2006::run(true);
    let get = |name: &str| rows.iter().find(|r| r.name == name).unwrap();
    // The high-reuse benchmark beats shared under dCat...
    assert!(get("omnetpp").dcat_vs_shared > 1.05);
    // ...and dCat is at least as good as static for it.
    assert!(get("omnetpp").dcat_vs_shared >= 0.95 * get("omnetpp").static_vs_shared);
    // The streaming benchmark is insensitive (within noise of 1.0).
    let lq = get("libquantum");
    assert!(lq.dcat_vs_shared > 0.8 && lq.dcat_vs_shared < 1.25);
    // The small-WSS benchmark is also insensitive.
    let hm = get("hmmer");
    assert!(hm.dcat_vs_shared > 0.8 && hm.dcat_vs_shared < 1.25);
}

#[test]
fn ablation_perf_table_reuse_speeds_up_the_second_run() {
    let with = e::fig12_perf_table_reuse::run_with_reuse(true, true);
    let without = e::fig12_perf_table_reuse::run_with_reuse(true, false);
    assert!(
        with.second_run_epochs <= without.second_run_epochs,
        "reuse {} vs no-reuse {}",
        with.second_run_epochs,
        without.second_run_epochs
    );
}

#[test]
fn postgres_multi_instance_parity_with_static() {
    // The paper reports "similar improvement" for three instances; our
    // PostgreSQL model is uniform-dominated, so each instance should sit
    // near static-CAT parity — and crucially, none may regress badly.
    let ratios = e::tab_services::run_postgres_multi(true);
    assert_eq!(ratios.len(), 3);
    for r in ratios {
        assert!(r > 0.85, "an instance regressed under dCat: {r}");
    }
}

#[test]
fn coloring_beats_cat_at_equal_capacity() {
    // Page coloring keeps full associativity, so it must land between the
    // 2-way CAT partition and the full cache on both machines.
    let (xeon_d, xeon_e5) = e::exp_coloring::run(true);
    for (name, r) in [("Xeon-D", xeon_d), ("Xeon-E5", xeon_e5)] {
        assert!(
            r.coloring < r.cat_2way,
            "{name}: coloring {:.1} should beat CAT {:.1}",
            r.coloring,
            r.cat_2way
        );
        assert!(
            r.coloring >= r.full * 0.95,
            "{name}: coloring cannot beat the full cache"
        );
    }
}

#[test]
fn replacement_policies_are_sane_at_small_scale() {
    // BIP's protection accumulates too slowly to show at the fast scale
    // (the single-set unit test in llc-sim proves the scan-resistance
    // semantics; the full `ablate_replacement` binary shows the
    // engine-level effect). Here: every policy runs, none collapses.
    let rows = e::ablate_replacement::run(true);
    assert_eq!(rows.len(), 4);
    let ipcs: Vec<f64> = rows.iter().map(|r| r.ipc).collect();
    let max = ipcs.iter().cloned().fold(f64::MIN, f64::max);
    for r in &rows {
        assert!(r.ipc > 0.0, "{} produced zero IPC", r.label);
        assert!(
            r.ipc > max / 4.0,
            "{} collapsed: {} vs best {max}",
            r.label,
            r.ipc
        );
    }
}
