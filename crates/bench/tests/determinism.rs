//! Regression tests for the parallel runner's central guarantee: results
//! (and report bytes) are identical whatever `--jobs` width produced
//! them.
//!
//! The oracle is [`dcat_bench::RunResult::serialize`], which renders
//! every per-epoch stat, policy decision, and latency sample with `{:?}`
//! floats (shortest round-trip form): two serializations are byte-equal
//! iff the runs are bit-identical.
//!
//! The width is a process global (`runner::set_jobs`), so everything
//! runs inside one `#[test]` to keep the narrow/wide passes from racing.

use dcat_bench::experiments::{fig10_dynamic_alloc, fig15_mixed};
use dcat_bench::{report, runner, Runner};

const MB: u64 = 1024 * 1024;

/// Runs fig10's working-set sweep at the given width and returns the
/// serialized runs plus the captured report bytes.
fn fig10_at(jobs: usize) -> (Vec<String>, String) {
    runner::set_jobs(jobs);
    report::capture(|| {
        Runner::from_env().map(vec![4 * MB, 8 * MB], |_, wss| {
            let (_, result) = fig10_dynamic_alloc::run_one(wss, true);
            result.serialize()
        })
    })
}

/// Runs fig15's three scenarios at the given width.
fn fig15_at(jobs: usize) -> (Vec<String>, String) {
    runner::set_jobs(jobs);
    report::capture(|| {
        fig15_mixed::run_results(true)
            .iter()
            .map(|r| r.serialize())
            .collect()
    })
}

#[test]
fn parallel_runs_are_bit_identical_to_serial_runs() {
    let (fig10_serial, out10_serial) = fig10_at(1);
    let (fig10_wide, out10_wide) = fig10_at(4);
    assert!(
        !fig10_serial.concat().is_empty(),
        "fig10 produced no stats to compare"
    );
    assert_eq!(
        fig10_serial, fig10_wide,
        "fig10 per-epoch stats differ between --jobs 1 and --jobs 4"
    );
    assert_eq!(out10_serial, out10_wide, "fig10 report bytes differ");

    let (fig15_serial, out15_serial) = fig15_at(1);
    let (fig15_wide, out15_wide) = fig15_at(4);
    assert_eq!(fig15_serial.len(), 3, "fig15 runs dcat/static/full");
    assert!(
        !fig15_serial.concat().is_empty(),
        "fig15 produced no stats to compare"
    );
    assert_eq!(
        fig15_serial, fig15_wide,
        "fig15 per-epoch stats differ between --jobs 1 and --jobs 4"
    );
    assert_eq!(out15_serial, out15_wide, "fig15 report bytes differ");

    runner::set_jobs(1);
}
