//! Regression tests for the parallel runner's central guarantee: results
//! (and report bytes) are identical whatever `--jobs` width produced
//! them.
//!
//! The oracle is [`dcat_bench::RunResult::serialize`], which renders
//! every per-epoch stat, policy decision, and latency sample with `{:?}`
//! floats (shortest round-trip form): two serializations are byte-equal
//! iff the runs are bit-identical. The observability layer is held to
//! the same bar: the rendered Prometheus snapshot and the concatenated
//! flight-recorder dumps must also be byte-equal across widths.
//!
//! The width is a process global (`runner::set_jobs`), so everything
//! runs inside one `#[test]` to keep the narrow/wide passes from racing.

use dcat_bench::experiments::{fig10_dynamic_alloc, fig15_mixed};
use dcat_bench::{report, runner, Runner};

const MB: u64 = 1024 * 1024;

/// One width's complete observable output for a fig10 sweep.
struct Observed {
    /// `RunResult::serialize()` per run.
    serials: Vec<String>,
    /// Captured report bytes.
    text: String,
    /// Rendered metrics snapshot.
    prometheus: String,
    /// Concatenated flight-recorder dumps, in run order.
    flights: String,
}

/// Runs fig10's working-set sweep at the given width.
fn fig10_at(jobs: usize) -> Observed {
    runner::set_jobs(jobs);
    let (pairs, text, snap) = report::capture_obs(|| {
        Runner::from_env().map(vec![4 * MB, 8 * MB], |_, wss| {
            let (_, result) = fig10_dynamic_alloc::run_one(wss, true);
            (result.serialize(), result.flight)
        })
    });
    let (serials, flights): (Vec<String>, Vec<String>) = pairs.into_iter().unzip();
    Observed {
        serials,
        text,
        prometheus: snap.to_prometheus(),
        flights: flights.concat(),
    }
}

/// Runs fig15's three scenarios at the given width.
fn fig15_at(jobs: usize) -> Observed {
    runner::set_jobs(jobs);
    let (pairs, text, snap) = report::capture_obs(|| {
        fig15_mixed::run_results(true)
            .iter()
            .map(|r| (r.serialize(), r.flight.clone()))
            .collect::<Vec<_>>()
    });
    let (serials, flights): (Vec<String>, Vec<String>) = pairs.into_iter().unzip();
    Observed {
        serials,
        text,
        prometheus: snap.to_prometheus(),
        flights: flights.concat(),
    }
}

#[test]
fn parallel_runs_are_bit_identical_to_serial_runs() {
    let fig10_serial = fig10_at(1);
    let fig10_wide = fig10_at(4);
    assert!(
        !fig10_serial.serials.concat().is_empty(),
        "fig10 produced no stats to compare"
    );
    assert_eq!(
        fig10_serial.serials, fig10_wide.serials,
        "fig10 per-epoch stats differ between --jobs 1 and --jobs 4"
    );
    assert_eq!(
        fig10_serial.text, fig10_wide.text,
        "fig10 report bytes differ"
    );
    assert!(
        !fig10_serial.prometheus.is_empty(),
        "fig10 recorded no metrics"
    );
    assert_eq!(
        fig10_serial.prometheus, fig10_wide.prometheus,
        "fig10 metrics snapshots differ across widths"
    );
    assert!(!fig10_serial.flights.is_empty(), "fig10 recorded no spans");
    assert_eq!(
        fig10_serial.flights, fig10_wide.flights,
        "fig10 flight-recorder dumps differ across widths"
    );

    let fig15_serial = fig15_at(1);
    let fig15_wide = fig15_at(4);
    assert_eq!(fig15_serial.serials.len(), 3, "fig15 runs dcat/static/full");
    assert!(
        !fig15_serial.serials.concat().is_empty(),
        "fig15 produced no stats to compare"
    );
    assert_eq!(
        fig15_serial.serials, fig15_wide.serials,
        "fig15 per-epoch stats differ between --jobs 1 and --jobs 4"
    );
    assert_eq!(
        fig15_serial.text, fig15_wide.text,
        "fig15 report bytes differ"
    );
    assert_eq!(
        fig15_serial.prometheus, fig15_wide.prometheus,
        "fig15 metrics snapshots differ across widths"
    );
    assert_eq!(
        fig15_serial.flights, fig15_wide.flights,
        "fig15 flight-recorder dumps differ across widths"
    );

    runner::set_jobs(1);
}
