//! Regression tests for the parallel runner's central guarantee: results
//! (and report bytes) are identical whatever `--jobs` width produced
//! them.
//!
//! The oracle is [`dcat_bench::RunResult::serialize`], which renders
//! every per-epoch stat, policy decision, and latency sample with `{:?}`
//! floats (shortest round-trip form): two serializations are byte-equal
//! iff the runs are bit-identical. The observability layer is held to
//! the same bar: the rendered Prometheus snapshot and the concatenated
//! flight-recorder dumps must also be byte-equal across widths.
//!
//! The width is a process global (`runner::set_jobs`), so everything
//! runs inside one `#[test]` to keep the narrow/wide passes from racing.

use dcat_bench::experiments::{fig10_dynamic_alloc, fig15_mixed};
use dcat_bench::{report, runner, FleetConfig, FleetPolicy, Runner};

const MB: u64 = 1024 * 1024;

/// One width's complete observable output for a fig10 sweep.
struct Observed {
    /// `RunResult::serialize()` per run.
    serials: Vec<String>,
    /// Captured report bytes.
    text: String,
    /// Rendered metrics snapshot.
    prometheus: String,
    /// Concatenated flight-recorder dumps, in run order.
    flights: String,
    /// Concatenated `dcat-frames/v1` segments, in run order.
    frames: String,
}

/// Runs fig10's working-set sweep at the given width.
fn fig10_at(jobs: usize) -> Observed {
    runner::set_jobs(jobs);
    let (triples, text, snap) = report::capture_obs(|| {
        Runner::from_env().map(vec![4 * MB, 8 * MB], |_, wss| {
            let (_, result) = fig10_dynamic_alloc::run_one(wss, true);
            (result.serialize(), result.flight, result.frames)
        })
    });
    let mut serials = Vec::new();
    let mut flights = String::new();
    let mut frames = String::new();
    for (s, fl, fr) in triples {
        serials.push(s);
        flights.push_str(&fl);
        frames.push_str(&fr);
    }
    Observed {
        serials,
        text,
        prometheus: snap.to_prometheus(),
        flights,
        frames,
    }
}

/// Runs fig15's three scenarios at the given width.
fn fig15_at(jobs: usize) -> Observed {
    runner::set_jobs(jobs);
    let (triples, text, snap) = report::capture_obs(|| {
        fig15_mixed::run_results(true)
            .iter()
            .map(|r| (r.serialize(), r.flight.clone(), r.frames.clone()))
            .collect::<Vec<_>>()
    });
    let mut serials = Vec::new();
    let mut flights = String::new();
    let mut frames = String::new();
    for (s, fl, fr) in triples {
        serials.push(s);
        flights.push_str(&fl);
        frames.push_str(&fr);
    }
    Observed {
        serials,
        text,
        prometheus: snap.to_prometheus(),
        flights,
        frames,
    }
}

#[test]
fn parallel_runs_are_bit_identical_to_serial_runs() {
    let fig10_serial = fig10_at(1);
    let fig10_wide = fig10_at(4);
    assert!(
        !fig10_serial.serials.concat().is_empty(),
        "fig10 produced no stats to compare"
    );
    assert_eq!(
        fig10_serial.serials, fig10_wide.serials,
        "fig10 per-epoch stats differ between --jobs 1 and --jobs 4"
    );
    assert_eq!(
        fig10_serial.text, fig10_wide.text,
        "fig10 report bytes differ"
    );
    assert!(
        !fig10_serial.prometheus.is_empty(),
        "fig10 recorded no metrics"
    );
    assert_eq!(
        fig10_serial.prometheus, fig10_wide.prometheus,
        "fig10 metrics snapshots differ across widths"
    );
    assert!(!fig10_serial.flights.is_empty(), "fig10 recorded no spans");
    assert_eq!(
        fig10_serial.flights, fig10_wide.flights,
        "fig10 flight-recorder dumps differ across widths"
    );
    dcat_obs::check_frames(&fig10_serial.frames).expect("fig10 frame stream validates");
    assert_eq!(
        fig10_serial.frames, fig10_wide.frames,
        "fig10 frame streams differ across widths"
    );

    let fig15_serial = fig15_at(1);
    let fig15_wide = fig15_at(4);
    assert_eq!(fig15_serial.serials.len(), 3, "fig15 runs dcat/static/full");
    assert!(
        !fig15_serial.serials.concat().is_empty(),
        "fig15 produced no stats to compare"
    );
    assert_eq!(
        fig15_serial.serials, fig15_wide.serials,
        "fig15 per-epoch stats differ between --jobs 1 and --jobs 4"
    );
    assert_eq!(
        fig15_serial.text, fig15_wide.text,
        "fig15 report bytes differ"
    );
    assert_eq!(
        fig15_serial.prometheus, fig15_wide.prometheus,
        "fig15 metrics snapshots differ across widths"
    );
    assert_eq!(
        fig15_serial.flights, fig15_wide.flights,
        "fig15 flight-recorder dumps differ across widths"
    );
    assert_eq!(
        fig15_serial.frames, fig15_wide.frames,
        "fig15 frame streams differ across widths"
    );

    runner::set_jobs(1);
}

/// Fleet smoke at the hundred-tenant scale: the per-host frame writers
/// travel with the hosts through the worker pool, so the concatenated
/// stream must be byte-identical at any `--jobs` width — including under
/// sampled LLC fidelity, which is how fleets of this size actually run.
#[test]
fn fleet_frame_streams_are_bit_identical_across_widths() {
    let cfg = {
        let mut cfg = FleetConfig::new(100, true);
        cfg.epochs = 4;
        cfg.cycles_per_epoch = 40_000;
        cfg.llc_fidelity = llc_sim::SimFidelity::Sampled { one_in: 8 };
        cfg
    };
    let run_at = |jobs: usize| {
        runner::set_jobs(jobs);
        dcat_bench::run_fleet(FleetPolicy::DcatMaxFairness, &cfg).expect("fleet runs")
    };
    let serial = run_at(1);
    let wide = run_at(4);
    let summary = dcat_obs::check_frames(&serial.frames).expect("fleet frame stream validates");
    assert_eq!(
        summary.segments, serial.hosts as usize,
        "one segment per host"
    );
    assert_eq!(
        summary.frames,
        serial.rows.len() * serial.hosts as usize,
        "one frame per host-epoch"
    );
    assert_eq!(
        serial.serialize(),
        wide.serialize(),
        "fleet aggregates differ across widths"
    );
    assert_eq!(
        serial.frames, wide.frames,
        "fleet frame streams differ across widths"
    );
    runner::set_jobs(1);
}
