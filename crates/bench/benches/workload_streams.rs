//! Access-generation throughput of the workload models.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use workloads::{spec_catalog, AccessStream, Mload, Mlr, RedisModel, ZipfSampler};

fn bench_streams(c: &mut Criterion) {
    let mut group = c.benchmark_group("streams");
    group.throughput(Throughput::Elements(1));

    let mut mlr = Mlr::new(16 * 1024 * 1024, 1);
    group.bench_function("mlr", |b| b.iter(|| mlr.next_access()));

    let mut mload = Mload::new(60 * 1024 * 1024);
    group.bench_function("mload", |b| b.iter(|| mload.next_access()));

    let mut redis = RedisModel::paper_default(3);
    group.bench_function("redis", |b| b.iter(|| redis.next_access()));

    let omnetpp = spec_catalog()
        .into_iter()
        .find(|s| s.name == "omnetpp")
        .unwrap();
    let mut spec = omnetpp.stream(5);
    group.bench_function("spec_omnetpp", |b| b.iter(|| spec.next_access()));

    let mut zipf = ZipfSampler::new(1_000_000, 0.99, 7);
    group.bench_function("zipf_sample", |b| b.iter(|| zipf.sample()));
    group.finish();
}

criterion_group!(benches, bench_streams);
criterion_main!(benches);
