//! Access-generation throughput of the workload models.

use dcat_bench::timing::bench;
use workloads::{spec_catalog, AccessStream, Mload, Mlr, RedisModel, ZipfSampler};

fn main() {
    let mut mlr = Mlr::new(16 * 1024 * 1024, 1);
    bench("streams/mlr", || mlr.next_access());

    let mut mload = Mload::new(60 * 1024 * 1024);
    bench("streams/mload", || mload.next_access());

    let mut redis = RedisModel::paper_default(3);
    bench("streams/redis", || redis.next_access());

    let omnetpp = spec_catalog()
        .into_iter()
        .find(|s| s.name == "omnetpp")
        .unwrap();
    let mut spec = omnetpp.stream(5);
    bench("streams/spec_omnetpp", || spec.next_access());

    let mut zipf = ZipfSampler::new(1_000_000, 0.99, 7);
    bench("streams/zipf_sample", || zipf.sample());
}
