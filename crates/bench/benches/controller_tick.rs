//! Cost of one dCat controller tick — the paper reports sub-1% CPU
//! overhead for a 1 s interval; a tick must therefore be microseconds.

use dcat::{DcatConfig, DcatController, WorkloadHandle};
use dcat_bench::timing::bench;
use perf_events::CounterSnapshot;
use resctrl::{CatCapabilities, InMemoryController};

fn main() {
    let mut cat = InMemoryController::new(CatCapabilities::with_ways(20), 16);
    let handles: Vec<WorkloadHandle> = (0..8)
        .map(|i| WorkloadHandle::new(format!("vm{i}"), vec![2 * i, 2 * i + 1], 2))
        .collect();
    let mut ctl = DcatController::new(DcatConfig::default(), handles, &mut cat).unwrap();
    let mut totals = vec![CounterSnapshot::default(); 8];
    let mut step = 0u64;
    bench("dcat_tick_8_domains", || {
        step += 1;
        for (i, t) in totals.iter_mut().enumerate() {
            t.l1_ref += 340_000 + i as u64;
            t.llc_ref += 120_000;
            t.llc_miss += 40_000 + (step % 7) * 1000;
            t.ret_ins += 1_000_000;
            t.cycles += 20_000_000;
        }
        ctl.tick(std::hint::black_box(&totals), &mut cat).unwrap()
    });
}
