//! Cost of the max-performance DP over performance tables (paper
//! Section 3.5's search for Max(sum of normalized IPCs)).

use dcat::perf_table::{max_performance_split, PerformanceTable};
use dcat_bench::timing::bench;

fn main() {
    // 8 workloads, each with a fully populated 20-way table.
    let tables: Vec<PerformanceTable> = (0..8)
        .map(|i| {
            let mut t = PerformanceTable::new(20);
            for w in 1..=20 {
                t.record(w, 1.0 + (w as f64).ln() * (0.05 + 0.01 * i as f64));
            }
            t
        })
        .collect();
    let refs: Vec<&PerformanceTable> = tables.iter().collect();
    bench("max_performance_split_8x20", || {
        max_performance_split(std::hint::black_box(&refs), 20)
    });
}
