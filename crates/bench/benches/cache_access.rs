//! Throughput of the simulated hierarchy's access path (the inner loop of
//! every experiment).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use llc_sim::{AccessKind, CacheGeometry, Hierarchy, HierarchyConfig, WayMask};

fn hierarchy() -> Hierarchy {
    Hierarchy::new(HierarchyConfig {
        cores: 4,
        l1: CacheGeometry::l1d(),
        l2: CacheGeometry::l2(),
        llc: CacheGeometry::xeon_e5_llc(),
        llc_policy: Default::default(),
    })
}

fn bench_access(c: &mut Criterion) {
    let mut group = c.benchmark_group("hierarchy_access");
    group.throughput(Throughput::Elements(1));

    let mut warm = hierarchy();
    warm.access(0, 0x1000, AccessKind::Load);
    group.bench_function("l1_hit", |b| {
        b.iter(|| warm.access(0, std::hint::black_box(0x1000), AccessKind::Load))
    });

    let mut miss = hierarchy();
    miss.set_fill_mask(0, WayMask::from_way_range(0, 2));
    let mut addr: u64 = 0;
    group.bench_function("llc_fill_churn", |b| {
        b.iter(|| {
            addr = addr.wrapping_add(64 * 8191);
            miss.access(0, std::hint::black_box(addr % (1 << 30)), AccessKind::Load)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_access);
criterion_main!(benches);
