//! Throughput of the simulated hierarchy's access path (the inner loop of
//! every experiment).

use dcat_bench::timing::bench;
use llc_sim::{AccessKind, CacheGeometry, Hierarchy, HierarchyConfig, WayMask};

fn hierarchy() -> Hierarchy {
    Hierarchy::new(HierarchyConfig {
        cores: 4,
        l1: CacheGeometry::l1d(),
        l2: CacheGeometry::l2(),
        llc: CacheGeometry::xeon_e5_llc(),
        llc_policy: Default::default(),
    })
}

fn main() {
    let mut warm = hierarchy();
    warm.access(0, 0x1000, AccessKind::Load);
    bench("hierarchy_access/l1_hit", || {
        warm.access(0, std::hint::black_box(0x1000), AccessKind::Load)
    });

    let mut miss = hierarchy();
    miss.set_fill_mask(0, WayMask::from_way_range(0, 2));
    let mut addr: u64 = 0;
    bench("hierarchy_access/llc_fill_churn", || {
        addr = addr.wrapping_add(64 * 8191);
        miss.access(0, std::hint::black_box(addr % (1 << 30)), AccessKind::Load)
    });
}
