//! Deterministic property-test harness.
//!
//! A minimal replacement for `proptest` that works offline: every test
//! case is generated from a seed derived deterministically from the case
//! index, so a failure is reproducible by construction — rerunning the
//! test replays the identical inputs. There is no shrinking; instead the
//! harness reports the failing case index and seed so the case can be
//! replayed in isolation with [`replay_case`].
//!
//! ```
//! prop_lite::run_cases("example", 64, |g| {
//!     let x = g.u64_in(0, 1000);
//!     assert!(x <= 1000);
//! });
//! ```

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use smallrng::SmallRng;

/// Per-case input generator handed to the property closure.
#[derive(Debug)]
pub struct Gen {
    rng: SmallRng,
    case: u32,
}

impl Gen {
    fn for_case(name: &str, case: u32) -> Self {
        Gen {
            rng: SmallRng::seed_from_u64(case_seed(name, case)),
            case,
        }
    }

    /// The zero-based index of the case being generated.
    pub fn case(&self) -> u32 {
        self.case
    }

    /// Uniform `u64` in `[lo, hi]` (inclusive).
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "u64_in: empty range {lo}..={hi}");
        if hi == u64::MAX && lo == 0 {
            return self.rng.next_u64();
        }
        self.rng.gen_range(lo..hi + 1)
    }

    /// Uniform `u32` in `[lo, hi]` (inclusive).
    pub fn u32_in(&mut self, lo: u32, hi: u32) -> u32 {
        self.u64_in(lo as u64, hi as u64) as u32
    }

    /// Uniform `usize` in `[lo, hi]` (inclusive).
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.u64_in(lo as u64, hi as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64_unit(&mut self) -> f64 {
        self.rng.gen_f64()
    }

    /// `true` with probability `p`.
    pub fn bool_with(&mut self, p: f64) -> bool {
        self.rng.gen_bool(p)
    }

    /// A reference to a uniformly chosen element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        let i = self.usize_in(0, items.len() - 1);
        &items[i]
    }

    /// A vector of `n` values where `n` is uniform in `[min_len, max_len]`.
    pub fn vec_of<T>(
        &mut self,
        min_len: usize,
        max_len: usize,
        mut f: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let n = self.usize_in(min_len, max_len);
        (0..n).map(|_| f(self)).collect()
    }
}

/// FNV-1a over the test name, mixed with the case index, so distinct
/// properties explore distinct input streams.
fn case_seed(name: &str, case: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^ ((case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Runs `cases` deterministic instances of `property`.
///
/// On failure the panic is re-raised after printing the case index and
/// seed, so the exact inputs can be replayed with [`replay_case`].
pub fn run_cases(name: &str, cases: u32, mut property: impl FnMut(&mut Gen)) {
    for case in 0..cases {
        let mut g = Gen::for_case(name, case);
        let outcome = catch_unwind(AssertUnwindSafe(|| property(&mut g)));
        if let Err(payload) = outcome {
            eprintln!(
                "prop-lite: property '{name}' failed at case {case} \
                 (seed {:#018x}); replay with prop_lite::replay_case(\"{name}\", {case}, ..)",
                case_seed(name, case)
            );
            resume_unwind(payload);
        }
    }
}

/// Replays a single case of a property, for debugging a reported failure.
pub fn replay_case(name: &str, case: u32, mut property: impl FnMut(&mut Gen)) {
    let mut g = Gen::for_case(name, case);
    property(&mut g);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic() {
        let mut first: Vec<u64> = Vec::new();
        run_cases("det", 16, |g| first.push(g.u64_in(0, 1_000_000)));
        let mut second: Vec<u64> = Vec::new();
        run_cases("det", 16, |g| second.push(g.u64_in(0, 1_000_000)));
        assert_eq!(first, second);
    }

    #[test]
    fn distinct_names_distinct_streams() {
        let mut a = Gen::for_case("alpha", 0);
        let mut b = Gen::for_case("beta", 0);
        let same = (0..32)
            .filter(|_| a.u64_in(0, u64::MAX - 1) == b.u64_in(0, u64::MAX - 1))
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn replay_matches_run() {
        let mut seen = 0u64;
        run_cases("replay", 5, |g| {
            if g.case() == 3 {
                seen = g.u64_in(0, 9999);
            }
        });
        let mut replayed = 0u64;
        replay_case("replay", 3, |g| replayed = g.u64_in(0, 9999));
        assert_eq!(seen, replayed);
    }

    #[test]
    fn bounds_are_inclusive() {
        run_cases("bounds", 64, |g| {
            let v = g.u64_in(3, 5);
            assert!((3..=5).contains(&v));
            let u = g.usize_in(0, 0);
            assert_eq!(u, 0);
        });
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn failures_propagate() {
        run_cases("fail", 4, |g| {
            if g.case() == 2 {
                panic!("boom");
            }
        });
    }
}
