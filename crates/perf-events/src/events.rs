//! MSR performance-event encodings from the paper's Table 2.
//!
//! On real hardware these select programmable counters via
//! `IA32_PERFEVTSELx` (event number + unit mask) or name fixed counters
//! (retired instructions and unhalted cycles live at MSR offsets 0x309 and
//! 0x30A). In the simulator the encodings are informational, but keeping
//! them lets a real MSR backend implement [`crate::TelemetrySource`] from
//! the same table.

/// One of the hardware events dCat programs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PerfEvent {
    /// LLC misses (event 0x2E, umask 0x41).
    LlcMisses,
    /// LLC references (event 0x2E, umask 0x4F).
    LlcReferences,
    /// L1 data-cache misses (event 0xD1, umask 0x08).
    L1Misses,
    /// L1 data-cache hits (event 0xD1, umask 0x01).
    L1Hits,
    /// Retired instructions (fixed counter, MSR 0x309).
    RetiredInstructions,
    /// Unhalted core cycles (fixed counter, MSR 0x30A).
    UnhaltedCycles,
}

/// How an event is selected on the hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventSelect {
    /// A programmable counter: event number and unit mask for
    /// `IA32_PERFEVTSELx`.
    Programmable {
        /// Architectural event number.
        event: u8,
        /// Unit mask qualifying the event.
        umask: u8,
    },
    /// A fixed counter living at the given MSR address.
    Fixed {
        /// MSR address of the fixed counter.
        msr: u16,
    },
}

impl PerfEvent {
    /// All events dCat uses, in Table-2 order.
    pub const ALL: [PerfEvent; 6] = [
        PerfEvent::LlcMisses,
        PerfEvent::LlcReferences,
        PerfEvent::L1Misses,
        PerfEvent::L1Hits,
        PerfEvent::RetiredInstructions,
        PerfEvent::UnhaltedCycles,
    ];

    /// The hardware selection for this event (the paper's Table 2).
    pub fn select(self) -> EventSelect {
        match self {
            PerfEvent::LlcMisses => EventSelect::Programmable {
                event: 0x2E,
                umask: 0x41,
            },
            PerfEvent::LlcReferences => EventSelect::Programmable {
                event: 0x2E,
                umask: 0x4F,
            },
            PerfEvent::L1Misses => EventSelect::Programmable {
                event: 0xD1,
                umask: 0x08,
            },
            PerfEvent::L1Hits => EventSelect::Programmable {
                event: 0xD1,
                umask: 0x01,
            },
            PerfEvent::RetiredInstructions => EventSelect::Fixed { msr: 0x309 },
            PerfEvent::UnhaltedCycles => EventSelect::Fixed { msr: 0x30A },
        }
    }

    /// Human-readable event name.
    pub fn name(self) -> &'static str {
        match self {
            PerfEvent::LlcMisses => "LLC Misses",
            PerfEvent::LlcReferences => "LLC References",
            PerfEvent::L1Misses => "L1 Cache Misses",
            PerfEvent::L1Hits => "L1 Cache Hits",
            PerfEvent::RetiredInstructions => "Retired Instructions",
            PerfEvent::UnhaltedCycles => "Unhalted Cycles",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_2_encodings() {
        assert_eq!(
            PerfEvent::LlcMisses.select(),
            EventSelect::Programmable {
                event: 0x2E,
                umask: 0x41
            }
        );
        assert_eq!(
            PerfEvent::LlcReferences.select(),
            EventSelect::Programmable {
                event: 0x2E,
                umask: 0x4F
            }
        );
        assert_eq!(
            PerfEvent::L1Misses.select(),
            EventSelect::Programmable {
                event: 0xD1,
                umask: 0x08
            }
        );
        assert_eq!(
            PerfEvent::RetiredInstructions.select(),
            EventSelect::Fixed { msr: 0x309 }
        );
        assert_eq!(
            PerfEvent::UnhaltedCycles.select(),
            EventSelect::Fixed { msr: 0x30A }
        );
    }

    #[test]
    fn all_lists_six_distinct_events() {
        let mut names: Vec<_> = PerfEvent::ALL.iter().map(|e| e.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 6);
    }
}
