//! Smoothing windows for noisy counter-derived metrics.
//!
//! The paper samples once per second and compares IPCs across intervals;
//! with short intervals the raw ratios are noisy, so controllers typically
//! smooth them. Both a fixed-size sliding mean and an exponentially
//! weighted moving average are provided; the dCat controller uses the
//! sliding window for its IPC comparisons and experiments can swap either
//! in.

use std::collections::VecDeque;

/// Fixed-capacity sliding-mean window.
#[derive(Debug, Clone)]
pub struct SlidingWindow {
    capacity: usize,
    values: VecDeque<f64>,
    sum: f64,
    evictions_since_rebuild: usize,
}

/// How many evictions the incremental `sum` may absorb before it is
/// recomputed from the retained samples. Each `sum - old + new` step can
/// lose low-order bits when sample magnitudes differ; over a daemon run
/// of millions of ticks the drift compounds without a periodic rebuild.
const SUM_REBUILD_EVERY: usize = 4096;

impl SlidingWindow {
    /// Creates a window averaging the most recent `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        SlidingWindow {
            capacity,
            values: VecDeque::with_capacity(capacity),
            sum: 0.0,
            evictions_since_rebuild: 0,
        }
    }

    /// Pushes a sample, evicting the oldest when full.
    pub fn push(&mut self, value: f64) {
        if self.values.len() == self.capacity {
            if let Some(old) = self.values.pop_front() {
                self.sum -= old;
                self.evictions_since_rebuild += 1;
            }
        }
        self.values.push_back(value);
        self.sum += value;
        if self.evictions_since_rebuild >= SUM_REBUILD_EVERY {
            self.sum = self.values.iter().sum();
            self.evictions_since_rebuild = 0;
        }
    }

    /// Mean of the retained samples; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            None
        } else {
            Some(self.sum / crate::convert::len_to_f64(self.values.len()))
        }
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no samples have been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Whether the window has reached capacity.
    pub fn is_full(&self) -> bool {
        self.values.len() == self.capacity
    }

    /// Drops all samples.
    pub fn clear(&mut self) {
        self.values.clear();
        self.sum = 0.0;
        self.evictions_since_rebuild = 0;
    }
}

/// Exponentially weighted moving average.
#[derive(Debug, Clone, Copy)]
pub struct EwmaWindow {
    alpha: f64,
    value: Option<f64>,
}

impl EwmaWindow {
    /// Creates an EWMA with smoothing factor `alpha` in `(0, 1]`; larger
    /// alpha weighs recent samples more.
    ///
    /// # Panics
    ///
    /// Panics when `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        EwmaWindow { alpha, value: None }
    }

    /// Feeds a sample and returns the updated average.
    pub fn push(&mut self, sample: f64) -> f64 {
        let next = match self.value {
            None => sample,
            Some(v) => v + self.alpha * (sample - v),
        };
        self.value = Some(next);
        next
    }

    /// Current average; `None` before the first sample.
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// Forgets all history.
    pub fn reset(&mut self) {
        self.value = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sliding_mean_over_partial_fill() {
        let mut w = SlidingWindow::new(4);
        assert_eq!(w.mean(), None);
        w.push(2.0);
        w.push(4.0);
        assert_eq!(w.mean(), Some(3.0));
        assert!(!w.is_full());
    }

    #[test]
    fn sliding_window_evicts_oldest() {
        let mut w = SlidingWindow::new(2);
        w.push(10.0);
        w.push(20.0);
        w.push(30.0);
        assert!(w.is_full());
        assert_eq!(w.mean(), Some(25.0));
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn sliding_window_clear() {
        let mut w = SlidingWindow::new(2);
        w.push(1.0);
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.mean(), None);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = SlidingWindow::new(0);
    }

    #[test]
    fn incremental_sum_does_not_drift_over_a_long_run() {
        // Regression: the purely incremental `sum` bleeds precision every
        // time a huge sample transits a window of tiny ones. Push ~1e6
        // mixed-magnitude samples and demand the mean still matches an
        // exact recomputation of the retained window.
        let mut w = SlidingWindow::new(512);
        let mut tail: VecDeque<f64> = VecDeque::new();
        for i in 0..1_000_000u64 {
            let value = if i % 97 == 0 { 1e12 } else { 1.0 };
            w.push(value);
            tail.push_back(value);
            if tail.len() > 512 {
                tail.pop_front();
            }
        }
        let exact_mean = tail.iter().sum::<f64>() / tail.len() as f64;
        let mean = w.mean().unwrap();
        let rel_err = ((mean - exact_mean) / exact_mean).abs();
        assert!(
            rel_err < 1e-9,
            "window mean drifted: got {mean}, exact {exact_mean}, rel err {rel_err:e}"
        );
    }

    #[test]
    fn ewma_first_sample_passes_through() {
        let mut e = EwmaWindow::new(0.5);
        assert_eq!(e.push(8.0), 8.0);
        assert_eq!(e.push(0.0), 4.0);
        assert_eq!(e.value(), Some(4.0));
    }

    #[test]
    fn ewma_alpha_one_tracks_input() {
        let mut e = EwmaWindow::new(1.0);
        e.push(3.0);
        assert_eq!(e.push(7.0), 7.0);
    }

    #[test]
    fn ewma_reset_forgets() {
        let mut e = EwmaWindow::new(0.3);
        e.push(5.0);
        e.reset();
        assert_eq!(e.value(), None);
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn ewma_rejects_bad_alpha() {
        let _ = EwmaWindow::new(0.0);
    }
}
