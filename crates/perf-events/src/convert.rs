//! Checked integer-to-float conversions for counter arithmetic.
//!
//! `u64 as f64` silently rounds once the value exceeds 2^53, which is
//! exactly the kind of drift the determinism harness cannot tolerate:
//! two runs could disagree in the last ulp of a ratio and diverge from
//! there. Every ratio in this crate funnels through [`counter_to_f64`],
//! so there is a single audited cast site (annotated for the DL008
//! cast-safety lint) and a debug assertion that fires long before a
//! counter delta approaches the exact-representation limit.

/// Largest `u64` that `f64` represents exactly (2^53).
pub const MAX_EXACT_U64_IN_F64: u64 = 1 << 53;

/// Converts a counter value to `f64`, asserting (in debug builds) that
/// the conversion is exact.
///
/// Interval *deltas* are the only values converted here, and a delta of
/// 2^53 events would require centuries of counting at realistic rates,
/// so the assertion documents an invariant rather than guarding a
/// plausible path. Release builds saturate into rounding territory
/// rather than panicking.
pub fn counter_to_f64(count: u64) -> f64 {
    debug_assert!(
        count <= MAX_EXACT_U64_IN_F64,
        "counter value {count} exceeds 2^53 and would round in f64"
    );
    // lint: allow(DL008, the one audited u64-to-f64 site; exactness is debug-asserted above)
    count as f64
}

/// Converts a collection length to `f64` exactly.
///
/// Lengths are bounded by memory, far below 2^53.
pub fn len_to_f64(len: usize) -> f64 {
    counter_to_f64(u64::try_from(len).unwrap_or(u64::MAX))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        assert_eq!(counter_to_f64(0), 0.0);
        assert_eq!(counter_to_f64(1), 1.0);
        assert_eq!(counter_to_f64(123_456_789), 123_456_789.0);
    }

    #[test]
    fn boundary_value_is_exact() {
        let exact = counter_to_f64(MAX_EXACT_U64_IN_F64);
        assert_eq!(exact, 9_007_199_254_740_992.0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "exceeds 2^53")]
    fn above_boundary_panics_in_debug() {
        counter_to_f64(MAX_EXACT_U64_IN_F64 + 1);
    }

    #[test]
    fn len_conversion_matches_counter_path() {
        assert_eq!(len_to_f64(42), 42.0);
        assert_eq!(len_to_f64(0), 0.0);
    }
}
