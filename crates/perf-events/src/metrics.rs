//! Derived per-interval metrics — the quantities dCat's five-step loop
//! actually reasons about.

use crate::convert::counter_to_f64;
use crate::snapshot::CounterSnapshot;

/// Metrics of one controller interval, derived from a counter delta.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntervalMetrics {
    /// Instructions retired during the interval.
    pub instructions: u64,
    /// Unhalted cycles during the interval.
    pub cycles: u64,
    /// L1 references (the paper's estimate of LOAD+STORE count).
    pub l1_ref: u64,
    /// LLC references.
    pub llc_ref: u64,
    /// LLC misses.
    pub llc_miss: u64,
    /// Instructions per cycle. Zero for an idle interval.
    pub ipc: f64,
    /// `llc_miss / llc_ref`. Zero when there were no LLC references.
    pub llc_miss_rate: f64,
    /// Memory accesses per instruction, `l1_ref / ret_ins` — the paper's
    /// phase signature. Zero for an idle interval.
    pub mem_access_per_instr: f64,
}

impl IntervalMetrics {
    /// Computes the metrics of an interval delta.
    pub fn from_delta(delta: &CounterSnapshot) -> Self {
        let ipc = if delta.cycles == 0 {
            0.0
        } else {
            counter_to_f64(delta.ret_ins) / counter_to_f64(delta.cycles)
        };
        let llc_miss_rate = if delta.llc_ref == 0 {
            0.0
        } else {
            counter_to_f64(delta.llc_miss) / counter_to_f64(delta.llc_ref)
        };
        let mem_access_per_instr = if delta.ret_ins == 0 {
            0.0
        } else {
            counter_to_f64(delta.l1_ref) / counter_to_f64(delta.ret_ins)
        };
        IntervalMetrics {
            instructions: delta.ret_ins,
            cycles: delta.cycles,
            l1_ref: delta.l1_ref,
            llc_ref: delta.llc_ref,
            llc_miss: delta.llc_miss,
            ipc,
            llc_miss_rate,
            mem_access_per_instr,
        }
    }

    /// Computes the metrics between two monotonic snapshots.
    pub fn between(earlier: &CounterSnapshot, later: &CounterSnapshot) -> Self {
        IntervalMetrics::from_delta(&later.delta_since(earlier))
    }

    /// Whether the interval saw essentially no activity (an idle VM).
    pub fn is_idle(&self) -> bool {
        self.instructions == 0
    }

    /// LLC references per retired instruction, used with the paper's
    /// `llc_ref_thr` to spot workloads that do not use the LLC at all.
    pub fn llc_ref_per_instr(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            counter_to_f64(self.llc_ref) / counter_to_f64(self.instructions)
        }
    }

    /// LLC misses per kilo-instruction (MPKI), the architecture
    /// literature's usual cache-pressure figure.
    pub fn llc_mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            1000.0 * counter_to_f64(self.llc_miss) / counter_to_f64(self.instructions)
        }
    }

    /// Relative IPC improvement of `self` over `earlier`
    /// (`(self - earlier) / earlier`). Returns 0 when `earlier` had no IPC.
    pub fn ipc_improvement_over(&self, earlier_ipc: f64) -> f64 {
        if earlier_ipc <= 0.0 {
            0.0
        } else {
            (self.ipc - earlier_ipc) / earlier_ipc
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delta(l1: u64, llc_r: u64, llc_m: u64, ins: u64, cyc: u64) -> CounterSnapshot {
        CounterSnapshot {
            l1_ref: l1,
            llc_ref: llc_r,
            llc_miss: llc_m,
            ret_ins: ins,
            cycles: cyc,
        }
    }

    #[test]
    fn basic_ratios() {
        let m = IntervalMetrics::from_delta(&delta(300, 100, 25, 1000, 2000));
        assert!((m.ipc - 0.5).abs() < 1e-9);
        assert!((m.llc_miss_rate - 0.25).abs() < 1e-9);
        assert!((m.mem_access_per_instr - 0.3).abs() < 1e-9);
        assert!((m.llc_ref_per_instr() - 0.1).abs() < 1e-9);
        assert!((m.llc_mpki() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn idle_interval_is_all_zero() {
        let m = IntervalMetrics::from_delta(&CounterSnapshot::default());
        assert!(m.is_idle());
        assert_eq!(m.ipc, 0.0);
        assert_eq!(m.llc_miss_rate, 0.0);
        assert_eq!(m.mem_access_per_instr, 0.0);
        assert_eq!(m.llc_mpki(), 0.0);
    }

    #[test]
    fn no_llc_refs_gives_zero_miss_rate() {
        let m = IntervalMetrics::from_delta(&delta(100, 0, 0, 500, 600));
        assert_eq!(m.llc_miss_rate, 0.0);
        assert!(!m.is_idle());
    }

    #[test]
    fn between_uses_monotonic_difference() {
        let a = delta(100, 50, 10, 1000, 1000);
        let b = delta(400, 150, 30, 3000, 5000);
        let m = IntervalMetrics::between(&a, &b);
        assert_eq!(m.instructions, 2000);
        assert!((m.ipc - 0.5).abs() < 1e-9);
    }

    #[test]
    fn ipc_improvement() {
        let m = IntervalMetrics::from_delta(&delta(0, 0, 0, 1200, 1000)); // ipc 1.2
        assert!((m.ipc_improvement_over(1.0) - 0.2).abs() < 1e-9);
        assert_eq!(m.ipc_improvement_over(0.0), 0.0);
    }
}
