//! The boundary between the controller and whatever produces counters.

use crate::snapshot::CounterSnapshot;

/// A provider of monotonic counter snapshots per monitoring domain.
///
/// A *domain* is the unit dCat manages: one tenant's VM or container,
/// aggregated over all the cores it owns (the paper averages a multi-core
/// workload's cores). Domain indices are dense `0..num_domains()`.
///
/// Implementations:
///
/// * the `host` crate implements this over the simulator's per-core
///   counters, and
/// * a production deployment would implement it over `msr`/`perf_event`
///   reads, with no change to the controller.
pub trait TelemetrySource {
    /// Number of monitoring domains.
    fn num_domains(&self) -> usize;

    /// Reads the monotonic totals for `domain`.
    ///
    /// # Panics
    ///
    /// Implementations may panic when `domain >= num_domains()`.
    fn read_counters(&self, domain: usize) -> CounterSnapshot;
}

/// A trivial in-memory source, useful for tests of counter consumers.
#[derive(Debug, Default, Clone)]
pub struct StaticTelemetry {
    /// One snapshot per domain, returned verbatim.
    pub snapshots: Vec<CounterSnapshot>,
}

impl TelemetrySource for StaticTelemetry {
    fn num_domains(&self) -> usize {
        self.snapshots.len()
    }

    fn read_counters(&self, domain: usize) -> CounterSnapshot {
        self.snapshots[domain]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_source_round_trips() {
        let snap = CounterSnapshot {
            ret_ins: 5,
            ..CounterSnapshot::default()
        };
        let src = StaticTelemetry {
            snapshots: vec![CounterSnapshot::default(), snap],
        };
        assert_eq!(src.num_domains(), 2);
        assert_eq!(src.read_counters(1).ret_ins, 5);
    }

    #[test]
    #[should_panic]
    fn out_of_range_domain_panics() {
        let src = StaticTelemetry::default();
        let _ = src.read_counters(0);
    }
}
