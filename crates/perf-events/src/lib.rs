//! Performance-counter plumbing between the hardware (or simulator) and the
//! dCat controller.
//!
//! The paper's prototype reads five MSR events per core (its Table 2):
//! LLC misses, LLC references, L1 cache misses/hits, retired instructions,
//! and unhalted cycles. This crate defines:
//!
//! * the event encodings ([`events::PerfEvent`]),
//! * monotonic [`CounterSnapshot`]s and interval deltas,
//! * the derived [`IntervalMetrics`] the controller actually reasons about
//!   (IPC, LLC miss rate, memory accesses per instruction, …),
//! * smoothing windows ([`window::EwmaWindow`], [`window::SlidingWindow`]),
//!   and
//! * the [`TelemetrySource`] trait that abstracts *where* counters come
//!   from, so the controller is identical whether it is driven by the
//!   simulator (the `host` crate) or by a real MSR/resctrl reader.

//! # Examples
//!
//! ```
//! use perf_events::{CounterSnapshot, IntervalMetrics};
//!
//! let earlier = CounterSnapshot::default();
//! let later = CounterSnapshot {
//!     l1_ref: 340_000,
//!     llc_ref: 120_000,
//!     llc_miss: 6_000,
//!     ret_ins: 1_000_000,
//!     cycles: 2_000_000,
//! };
//! let m = IntervalMetrics::between(&earlier, &later);
//! assert!((m.ipc - 0.5).abs() < 1e-9);
//! assert!((m.llc_miss_rate - 0.05).abs() < 1e-9);
//! assert!((m.mem_access_per_instr - 0.34).abs() < 1e-9);
//! ```

pub mod convert;
pub mod events;
pub mod metrics;
pub mod snapshot;
pub mod source;
pub mod window;

pub use events::PerfEvent;
pub use metrics::IntervalMetrics;
pub use snapshot::{CounterSnapshot, WrapOutcome};
pub use source::TelemetrySource;
pub use window::{EwmaWindow, SlidingWindow};
