//! Monotonic counter snapshots and interval deltas.

use llc_sim::CoreCounters;

/// A point-in-time reading of the Table-2 counters for one monitoring
/// domain (a core, or the aggregate of a VM's cores).
///
/// Values are monotonic totals; subtract two snapshots with
/// [`CounterSnapshot::delta_since`] to get an interval.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// L1 data-cache references (hits + misses).
    pub l1_ref: u64,
    /// LLC references.
    pub llc_ref: u64,
    /// LLC misses.
    pub llc_miss: u64,
    /// Retired instructions.
    pub ret_ins: u64,
    /// Unhalted cycles.
    pub cycles: u64,
}

/// The verdict of a wrap-aware interval computation.
///
/// Hardware counters are narrower than 64 bits (48 bits on the paper's
/// Xeons, 32 on some hypervisor interfaces), so a live total eventually
/// reports *less* than the previous sample. Treating that as a zero
/// delta — which the saturating [`CounterSnapshot::delta_since`] does —
/// reads a busy interval as idle, and the controller can misclassify it
/// as a phase change. [`CounterSnapshot::delta_since_wrap_aware`]
/// distinguishes the three cases instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WrapOutcome {
    /// Every component advanced normally.
    Monotonic(CounterSnapshot),
    /// At least one component wrapped at the counter width; the delta is
    /// reconstructed with a width-aware `wrapping_sub`.
    Wrapped(CounterSnapshot),
    /// A component went backwards by more than the plausible-wrap bound:
    /// the counter was reset (or the sample is garbage). There is no
    /// trustworthy delta; the interval must be skipped.
    Invalid,
}

impl CounterSnapshot {
    /// The interval `self - earlier`, saturating at zero per component so a
    /// counter reset can never produce an underflowed interval.
    pub fn delta_since(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        CounterSnapshot {
            l1_ref: self.l1_ref.saturating_sub(earlier.l1_ref),
            llc_ref: self.llc_ref.saturating_sub(earlier.llc_ref),
            llc_miss: self.llc_miss.saturating_sub(earlier.llc_miss),
            ret_ins: self.ret_ins.saturating_sub(earlier.ret_ins),
            cycles: self.cycles.saturating_sub(earlier.cycles),
        }
    }

    /// The interval `self - earlier` for counters that are `width_bits`
    /// wide, distinguishing a genuine wrap from a reset.
    ///
    /// A component with `later >= earlier` advances normally. A component
    /// with `later < earlier` is reconstructed as
    /// `(later - earlier) mod 2^width_bits`; the reconstruction is
    /// trusted only when it lands below half the counter range —
    /// per-interval deltas are minuscule next to the wrap period, so a
    /// "wrapped delta" of 2^47 cycles means reset, not wrap, and the
    /// whole interval is [`WrapOutcome::Invalid`].
    ///
    /// `earlier` may exceed `2^width_bits` (the daemon rebases totals
    /// past each wrap); only its low `width_bits` matter to the modular
    /// subtraction, so the reconstruction stays exact as long as the
    /// true per-interval delta fits in the width.
    ///
    /// # Panics
    ///
    /// Panics when `width_bits` is outside `1..=64`.
    pub fn delta_since_wrap_aware(
        &self,
        earlier: &CounterSnapshot,
        width_bits: u32,
    ) -> WrapOutcome {
        assert!(
            (1..=64).contains(&width_bits),
            "counter width must be 1..=64 bits"
        );
        let mask = if width_bits == 64 {
            u64::MAX
        } else {
            (1u64 << width_bits) - 1
        };
        let half_range = 1u64 << (width_bits - 1);
        // Per component: (delta, did it wrap), or None on a reset.
        let component = |later: u64, earlier: u64| -> Option<(u64, bool)> {
            if later >= earlier {
                return Some((later - earlier, false));
            }
            let delta = later.wrapping_sub(earlier) & mask;
            (delta < half_range).then_some((delta, true))
        };
        let [Some(l1_ref), Some(llc_ref), Some(llc_miss), Some(ret_ins), Some(cycles)] = [
            component(self.l1_ref, earlier.l1_ref),
            component(self.llc_ref, earlier.llc_ref),
            component(self.llc_miss, earlier.llc_miss),
            component(self.ret_ins, earlier.ret_ins),
            component(self.cycles, earlier.cycles),
        ] else {
            return WrapOutcome::Invalid;
        };
        let resolved = [l1_ref, llc_ref, llc_miss, ret_ins, cycles];
        let delta = CounterSnapshot {
            l1_ref: l1_ref.0,
            llc_ref: llc_ref.0,
            llc_miss: llc_miss.0,
            ret_ins: ret_ins.0,
            cycles: cycles.0,
        };
        if resolved.iter().any(|(_, wrapped)| *wrapped) {
            WrapOutcome::Wrapped(delta)
        } else {
            WrapOutcome::Monotonic(delta)
        }
    }

    /// Component-wise sum, used to aggregate the cores of one VM.
    pub fn merged_with(&self, other: &CounterSnapshot) -> CounterSnapshot {
        CounterSnapshot {
            l1_ref: self.l1_ref.saturating_add(other.l1_ref),
            llc_ref: self.llc_ref.saturating_add(other.llc_ref),
            llc_miss: self.llc_miss.saturating_add(other.llc_miss),
            ret_ins: self.ret_ins.saturating_add(other.ret_ins),
            cycles: self.cycles.saturating_add(other.cycles),
        }
    }
}

impl From<CoreCounters> for CounterSnapshot {
    /// Projects the simulator's per-core counters onto the five events dCat
    /// reads (the simulator's extra `l1_miss` is dropped; the controller
    /// never sees it, exactly as on real hardware where it would simply not
    /// be programmed).
    fn from(c: CoreCounters) -> Self {
        CounterSnapshot {
            l1_ref: c.l1_ref,
            llc_ref: c.llc_ref,
            llc_miss: c.llc_miss,
            ret_ins: c.ret_ins,
            cycles: c.cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(l1: u64, llc_r: u64, llc_m: u64, ins: u64, cyc: u64) -> CounterSnapshot {
        CounterSnapshot {
            l1_ref: l1,
            llc_ref: llc_r,
            llc_miss: llc_m,
            ret_ins: ins,
            cycles: cyc,
        }
    }

    #[test]
    fn delta_subtracts_componentwise() {
        let d = snap(10, 8, 4, 100, 200).delta_since(&snap(4, 3, 1, 40, 90));
        assert_eq!(d, snap(6, 5, 3, 60, 110));
    }

    #[test]
    fn delta_saturates() {
        let d = snap(1, 1, 1, 1, 1).delta_since(&snap(5, 5, 5, 5, 5));
        assert_eq!(d, CounterSnapshot::default());
    }

    #[test]
    fn wrap_aware_delta_matches_plain_subtraction_when_monotonic() {
        let earlier = snap(4, 3, 1, 40, 90);
        let later = snap(10, 8, 4, 100, 200);
        assert_eq!(
            later.delta_since_wrap_aware(&earlier, 48),
            WrapOutcome::Monotonic(snap(6, 5, 3, 60, 110))
        );
    }

    #[test]
    fn wrapped_counter_reconstructs_the_true_delta() {
        // Regression: `delta_since` collapses a wrap to zero and the
        // controller reads a busy interval as idle. A 32-bit cycles
        // counter that advanced by 20M across the wrap boundary must
        // come back as exactly 20M.
        let before = (1u64 << 32) - 5_000_000;
        let after = (before + 20_000_000) & ((1u64 << 32) - 1);
        let earlier = snap(100, 50, 10, 1_000, before);
        let later = snap(200, 90, 15, 2_000, after);
        assert!(after < before, "the fixture must actually wrap");
        assert_eq!(later.delta_since(&earlier).cycles, 0, "the legacy bug");
        let WrapOutcome::Wrapped(d) = later.delta_since_wrap_aware(&earlier, 32) else {
            panic!("expected a wrapped interval");
        };
        assert_eq!(d.cycles, 20_000_000);
        assert_eq!(d.ret_ins, 1_000, "non-wrapped components subtract plainly");
    }

    #[test]
    fn wrap_reconstruction_tolerates_rebased_earlier_totals() {
        // The daemon rebases totals past each wrap, so `earlier` can
        // exceed the counter range; only its low bits matter.
        let earlier = snap(0, 0, 0, 0, 3 * (1u64 << 32) + 4_000_000_000);
        let later = snap(
            0,
            0,
            0,
            0,
            (4_000_000_000u64 + 600_000_000) & ((1u64 << 32) - 1),
        );
        let WrapOutcome::Wrapped(d) = later.delta_since_wrap_aware(&earlier, 32) else {
            panic!("expected a wrapped interval");
        };
        assert_eq!(d.cycles, 600_000_000);
    }

    #[test]
    fn implausible_backward_jump_is_a_reset() {
        // Dropping from 1B to 12 is not a 32-bit wrap (the reconstructed
        // delta would be ~3.3B, past half the range): the counter reset.
        let earlier = snap(0, 0, 0, 0, 1_000_000_000);
        let later = snap(0, 0, 0, 0, 12);
        assert_eq!(
            later.delta_since_wrap_aware(&earlier, 32),
            WrapOutcome::Invalid
        );
    }

    #[test]
    fn full_width_wraps_are_detected_too() {
        let earlier = snap(0, 0, 0, 0, u64::MAX - 9);
        let later = snap(0, 0, 0, 0, 10);
        let WrapOutcome::Wrapped(d) = later.delta_since_wrap_aware(&earlier, 64) else {
            panic!("expected a wrapped interval");
        };
        assert_eq!(d.cycles, 20);
    }

    #[test]
    fn zero_delta_is_monotonic_at_any_width() {
        let s = snap(5, 5, 5, 5, 5);
        for width in [1, 2, 32, 63, 64] {
            assert_eq!(
                s.delta_since_wrap_aware(&s, width),
                WrapOutcome::Monotonic(CounterSnapshot::default()),
                "width {width}"
            );
        }
    }

    #[test]
    fn one_bit_counters_never_report_a_wrap() {
        // At width 1 the half range is 1, so the only reconstructable
        // wrapped delta is 0 — a 1 -> 0 transition has delta 1 and must
        // be rejected as a reset rather than accepted as a wrap.
        let earlier = snap(0, 0, 0, 0, 1);
        let later = snap(0, 0, 0, 0, 0);
        assert_eq!(
            later.delta_since_wrap_aware(&earlier, 1),
            WrapOutcome::Invalid
        );
    }

    #[test]
    fn wrapped_delta_just_under_half_range_is_accepted() {
        let half = 1u64 << 31;
        let mask = (1u64 << 32) - 1;
        let earlier_cycles = mask - 10;
        let later_cycles = (earlier_cycles + (half - 1)) & mask;
        let earlier = snap(0, 0, 0, 0, earlier_cycles);
        let later = snap(0, 0, 0, 0, later_cycles);
        let WrapOutcome::Wrapped(d) = later.delta_since_wrap_aware(&earlier, 32) else {
            panic!("a wrapped delta of half_range - 1 must still be plausible");
        };
        assert_eq!(d.cycles, half - 1);
    }

    #[test]
    fn wrapped_delta_at_half_range_is_a_reset() {
        let half = 1u64 << 31;
        let mask = (1u64 << 32) - 1;
        let earlier_cycles = mask - 10;
        let later_cycles = (earlier_cycles + half) & mask;
        let earlier = snap(0, 0, 0, 0, earlier_cycles);
        let later = snap(0, 0, 0, 0, later_cycles);
        assert_eq!(
            later.delta_since_wrap_aware(&earlier, 32),
            WrapOutcome::Invalid
        );
    }

    #[test]
    #[should_panic(expected = "counter width must be 1..=64 bits")]
    fn zero_width_panics() {
        let s = snap(0, 0, 0, 0, 0);
        let _ = s.delta_since_wrap_aware(&s, 0);
    }

    #[test]
    fn merge_adds() {
        let m = snap(1, 2, 3, 4, 5).merged_with(&snap(10, 20, 30, 40, 50));
        assert_eq!(m, snap(11, 22, 33, 44, 55));
    }

    #[test]
    fn merge_saturates_instead_of_overflowing() {
        let m = snap(u64::MAX, 1, u64::MAX - 1, 0, u64::MAX).merged_with(&snap(
            1,
            u64::MAX,
            1,
            0,
            u64::MAX,
        ));
        assert_eq!(m, snap(u64::MAX, u64::MAX, u64::MAX, 0, u64::MAX));
    }

    #[test]
    fn from_core_counters_projects_events() {
        let c = CoreCounters {
            l1_ref: 7,
            l1_miss: 3,
            llc_ref: 2,
            llc_miss: 1,
            ret_ins: 20,
            cycles: 50,
        };
        let s = CounterSnapshot::from(c);
        assert_eq!(s, snap(7, 2, 1, 20, 50));
    }
}
