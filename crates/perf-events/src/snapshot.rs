//! Monotonic counter snapshots and interval deltas.

use llc_sim::CoreCounters;

/// A point-in-time reading of the Table-2 counters for one monitoring
/// domain (a core, or the aggregate of a VM's cores).
///
/// Values are monotonic totals; subtract two snapshots with
/// [`CounterSnapshot::delta_since`] to get an interval.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// L1 data-cache references (hits + misses).
    pub l1_ref: u64,
    /// LLC references.
    pub llc_ref: u64,
    /// LLC misses.
    pub llc_miss: u64,
    /// Retired instructions.
    pub ret_ins: u64,
    /// Unhalted cycles.
    pub cycles: u64,
}

impl CounterSnapshot {
    /// The interval `self - earlier`, saturating at zero per component so a
    /// counter reset can never produce an underflowed interval.
    pub fn delta_since(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        CounterSnapshot {
            l1_ref: self.l1_ref.saturating_sub(earlier.l1_ref),
            llc_ref: self.llc_ref.saturating_sub(earlier.llc_ref),
            llc_miss: self.llc_miss.saturating_sub(earlier.llc_miss),
            ret_ins: self.ret_ins.saturating_sub(earlier.ret_ins),
            cycles: self.cycles.saturating_sub(earlier.cycles),
        }
    }

    /// Component-wise sum, used to aggregate the cores of one VM.
    pub fn merged_with(&self, other: &CounterSnapshot) -> CounterSnapshot {
        CounterSnapshot {
            l1_ref: self.l1_ref + other.l1_ref,
            llc_ref: self.llc_ref + other.llc_ref,
            llc_miss: self.llc_miss + other.llc_miss,
            ret_ins: self.ret_ins + other.ret_ins,
            cycles: self.cycles + other.cycles,
        }
    }
}

impl From<CoreCounters> for CounterSnapshot {
    /// Projects the simulator's per-core counters onto the five events dCat
    /// reads (the simulator's extra `l1_miss` is dropped; the controller
    /// never sees it, exactly as on real hardware where it would simply not
    /// be programmed).
    fn from(c: CoreCounters) -> Self {
        CounterSnapshot {
            l1_ref: c.l1_ref,
            llc_ref: c.llc_ref,
            llc_miss: c.llc_miss,
            ret_ins: c.ret_ins,
            cycles: c.cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(l1: u64, llc_r: u64, llc_m: u64, ins: u64, cyc: u64) -> CounterSnapshot {
        CounterSnapshot {
            l1_ref: l1,
            llc_ref: llc_r,
            llc_miss: llc_m,
            ret_ins: ins,
            cycles: cyc,
        }
    }

    #[test]
    fn delta_subtracts_componentwise() {
        let d = snap(10, 8, 4, 100, 200).delta_since(&snap(4, 3, 1, 40, 90));
        assert_eq!(d, snap(6, 5, 3, 60, 110));
    }

    #[test]
    fn delta_saturates() {
        let d = snap(1, 1, 1, 1, 1).delta_since(&snap(5, 5, 5, 5, 5));
        assert_eq!(d, CounterSnapshot::default());
    }

    #[test]
    fn merge_adds() {
        let m = snap(1, 2, 3, 4, 5).merged_with(&snap(10, 20, 30, 40, 50));
        assert_eq!(m, snap(11, 22, 33, 44, 55));
    }

    #[test]
    fn from_core_counters_projects_events() {
        let c = CoreCounters {
            l1_ref: 7,
            l1_miss: 3,
            llc_ref: 2,
            llc_miss: 1,
            ret_ins: 20,
            cycles: 50,
        };
        let s = CounterSnapshot::from(c);
        assert_eq!(s, snap(7, 2, 1, 20, 50));
    }
}
