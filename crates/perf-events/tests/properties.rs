//! Property-based tests for counter snapshots, metrics, and windows.

use perf_events::{CounterSnapshot, EwmaWindow, IntervalMetrics, SlidingWindow};
use prop_lite::Gen;

fn snapshot(g: &mut Gen) -> CounterSnapshot {
    let max = (1u64 << 40) - 1;
    CounterSnapshot {
        l1_ref: g.u64_in(0, max),
        llc_ref: g.u64_in(0, max),
        llc_miss: g.u64_in(0, max),
        ret_ins: g.u64_in(0, max),
        cycles: g.u64_in(0, max),
    }
}

fn signed_sample(g: &mut Gen) -> f64 {
    (g.f64_unit() - 0.5) * 2e6
}

/// Deltas never underflow, and `later - earlier + earlier >= earlier`.
#[test]
fn delta_never_underflows() {
    prop_lite::run_cases("delta_never_underflows", 256, |g| {
        let a = snapshot(g);
        let b = snapshot(g);
        let d = a.delta_since(&b);
        assert!(d.l1_ref <= a.l1_ref.max(b.l1_ref));
        // Any monotone pair reconstructs exactly.
        let merged = b.merged_with(&d);
        if a.l1_ref >= b.l1_ref
            && a.llc_ref >= b.llc_ref
            && a.llc_miss >= b.llc_miss
            && a.ret_ins >= b.ret_ins
            && a.cycles >= b.cycles
        {
            assert_eq!(merged, a);
        }
    });
}

/// Derived ratios are finite and within their mathematical ranges.
#[test]
fn metrics_ranges() {
    prop_lite::run_cases("metrics_ranges", 256, |g| {
        let d = snapshot(g);
        let m = IntervalMetrics::from_delta(&d);
        assert!(m.ipc.is_finite() && m.ipc >= 0.0);
        assert!(m.mem_access_per_instr.is_finite() && m.mem_access_per_instr >= 0.0);
        assert!(m.llc_miss_rate.is_finite() && m.llc_miss_rate >= 0.0);
        if d.llc_miss <= d.llc_ref {
            assert!(m.llc_miss_rate <= 1.0 + 1e-9);
        }
        assert!(m.llc_ref_per_instr().is_finite());
    });
}

/// The sliding window's mean is always within the min/max of its
/// retained samples.
#[test]
fn sliding_mean_bounded() {
    prop_lite::run_cases("sliding_mean_bounded", 128, |g| {
        let cap = g.usize_in(1, 15);
        let samples = g.vec_of(1, 63, signed_sample);
        let mut w = SlidingWindow::new(cap);
        for (i, &s) in samples.iter().enumerate() {
            w.push(s);
            let start = (i + 1).saturating_sub(cap);
            let window = &samples[start..=i];
            let lo = window.iter().cloned().fold(f64::MAX, f64::min);
            let hi = window.iter().cloned().fold(f64::MIN, f64::max);
            let mean = w.mean().unwrap();
            assert!(mean >= lo - 1e-6 && mean <= hi + 1e-6);
        }
    });
}

/// EWMA stays within the range of observed samples.
#[test]
fn ewma_bounded() {
    prop_lite::run_cases("ewma_bounded", 128, |g| {
        let alpha_pct = g.u32_in(1, 100);
        let samples = g.vec_of(1, 63, signed_sample);
        let mut e = EwmaWindow::new(f64::from(alpha_pct) / 100.0);
        let mut lo = f64::MAX;
        let mut hi = f64::MIN;
        for &s in &samples {
            lo = lo.min(s);
            hi = hi.max(s);
            let v = e.push(s);
            assert!(v >= lo - 1e-6 && v <= hi + 1e-6);
        }
    });
}

/// `between` equals `from_delta` of the difference.
#[test]
fn between_matches_delta() {
    prop_lite::run_cases("between_matches_delta", 256, |g| {
        let earlier = snapshot(g);
        let growth = snapshot(g);
        let later = earlier.merged_with(&growth);
        let a = IntervalMetrics::between(&earlier, &later);
        let b = IntervalMetrics::from_delta(&later.delta_since(&earlier));
        assert_eq!(a, b);
    });
}
