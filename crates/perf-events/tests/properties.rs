//! Property-based tests for counter snapshots, metrics, and windows.

use perf_events::{CounterSnapshot, EwmaWindow, IntervalMetrics, SlidingWindow};
use proptest::prelude::*;

fn snapshot_strategy() -> impl Strategy<Value = CounterSnapshot> {
    (
        0u64..1 << 40,
        0u64..1 << 40,
        0u64..1 << 40,
        0u64..1 << 40,
        0u64..1 << 40,
    )
        .prop_map(|(l1, lr, lm, ri, cy)| CounterSnapshot {
            l1_ref: l1,
            llc_ref: lr,
            llc_miss: lm,
            ret_ins: ri,
            cycles: cy,
        })
}

proptest! {
    /// Deltas never underflow, and `later - earlier + earlier >= earlier`.
    #[test]
    fn delta_never_underflows(a in snapshot_strategy(), b in snapshot_strategy()) {
        let d = a.delta_since(&b);
        prop_assert!(d.l1_ref <= a.l1_ref.max(b.l1_ref));
        // Any monotone pair reconstructs exactly.
        let merged = b.merged_with(&d);
        if a.l1_ref >= b.l1_ref
            && a.llc_ref >= b.llc_ref
            && a.llc_miss >= b.llc_miss
            && a.ret_ins >= b.ret_ins
            && a.cycles >= b.cycles
        {
            prop_assert_eq!(merged, a);
        }
    }

    /// Derived ratios are finite and within their mathematical ranges.
    #[test]
    fn metrics_ranges(d in snapshot_strategy()) {
        let m = IntervalMetrics::from_delta(&d);
        prop_assert!(m.ipc.is_finite() && m.ipc >= 0.0);
        prop_assert!(m.mem_access_per_instr.is_finite() && m.mem_access_per_instr >= 0.0);
        prop_assert!(m.llc_miss_rate.is_finite() && m.llc_miss_rate >= 0.0);
        if d.llc_miss <= d.llc_ref {
            prop_assert!(m.llc_miss_rate <= 1.0 + 1e-9);
        }
        prop_assert!(m.llc_ref_per_instr().is_finite());
    }

    /// The sliding window's mean is always within the min/max of its
    /// retained samples.
    #[test]
    fn sliding_mean_bounded(
        cap in 1usize..16,
        samples in prop::collection::vec(-1e6f64..1e6, 1..64),
    ) {
        let mut w = SlidingWindow::new(cap);
        for (i, &s) in samples.iter().enumerate() {
            w.push(s);
            let start = (i + 1).saturating_sub(cap);
            let window = &samples[start..=i];
            let lo = window.iter().cloned().fold(f64::MAX, f64::min);
            let hi = window.iter().cloned().fold(f64::MIN, f64::max);
            let mean = w.mean().unwrap();
            prop_assert!(mean >= lo - 1e-6 && mean <= hi + 1e-6);
        }
    }

    /// EWMA stays within the range of observed samples.
    #[test]
    fn ewma_bounded(
        alpha_pct in 1u32..=100,
        samples in prop::collection::vec(-1e6f64..1e6, 1..64),
    ) {
        let mut e = EwmaWindow::new(f64::from(alpha_pct) / 100.0);
        let mut lo = f64::MAX;
        let mut hi = f64::MIN;
        for &s in &samples {
            lo = lo.min(s);
            hi = hi.max(s);
            let v = e.push(s);
            prop_assert!(v >= lo - 1e-6 && v <= hi + 1e-6);
        }
    }

    /// `between` equals `from_delta` of the difference.
    #[test]
    fn between_matches_delta(earlier in snapshot_strategy(), growth in snapshot_strategy()) {
        let later = earlier.merged_with(&growth);
        let a = IntervalMetrics::between(&earlier, &later);
        let b = IntervalMetrics::from_delta(&later.delta_since(&earlier));
        prop_assert_eq!(a, b);
    }
}
