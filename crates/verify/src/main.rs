//! `dcat-verify`: a bounded exhaustive model checker for the dCat
//! controller.
//!
//! The checker drives a real [`DcatController`] against a real
//! [`InMemoryController`] — no mocked internals — through every point of
//! an abstracted telemetry lattice, from every reachable
//! [`WorkloadClass`] start state, across multi-tenant pool shapes and
//! configuration corners:
//!
//! * **telemetry lattice** — LLC use {below, above `llc_ref_per_instr_thr`}
//!   × miss rate {below `donor_miss_rate_thr`, between the thresholds,
//!   above `llc_miss_rate_thr`} × IPC delta {well below, at, well above
//!   the previous interval} × phase change {no, yes};
//! * **start states** — all six `WorkloadClass` values, reached by a
//!   scripted telemetry preamble (combinations the controller can never
//!   reach, e.g. Receiver on a cache with no free pool, are skipped and
//!   reported, not counted);
//! * **pool shapes** — 1–4 tenants of 2 reserved ways over a cache with
//!   0–3 free ways;
//! * **config corners** — `min_ways` ∈ {1, 2} × `streaming_multiplier`
//!   ∈ {1, 3} × `settle_intervals` ∈ {1, 3}; `settle_intervals = 0` is
//!   asserted to be rejected at construction.
//!
//! After every tick of every exploration the checker asserts the shared
//! invariant layer ([`dcat::invariants::check`]: way conservation,
//! allocation floors, mask/grant agreement, CBM legality) plus the
//! temporal properties the invariants cannot see from one snapshot:
//!
//! * a Reclaim verdict restores the reserved allocation that same tick;
//! * no Keeper↔Donor oscillation under fixed telemetry (the donor-floor
//!   ratchet allows one bounded retry, so ≤ 2 edges per direction);
//! * probe termination: an Unknown workload resolves into Keeper,
//!   Receiver, or Streaming within a bounded number of fixed-telemetry
//!   intervals (growth is bounded by the streaming cap and the pool, and
//!   a denied probe must resolve rather than spin).
//!
//! Exit status is non-zero if any property fails or fewer configurations
//! than the documented floor were explored.

use dcat::{DcatConfig, DcatController, WorkloadClass, WorkloadHandle};
use perf_events::CounterSnapshot;
use resctrl::fault::{Fault, FaultPlan, FaultingController};
use resctrl::retry::{RetryPolicy, RetryingController};
use resctrl::{CatCapabilities, InMemoryController};

/// Instructions retired per synthesized interval.
const INSTRUCTIONS: f64 = 1_000_000.0;
/// Memory accesses per instruction defining the phase signature.
const MAPI_BASE: f64 = 0.3;
/// Signature after the lattice's phase-change point (a 50% shift, well
/// past the 10% detection threshold).
const MAPI_SHIFTED: f64 = 0.45;
/// Ticks allowed for a preamble to reach its start state before the
/// (state, pool, config) combination is declared unreachable.
const MAX_PREAMBLE_TICKS: u32 = 80;
/// Explored-configuration floor a full run must meet.
const EXPLORED_FLOOR: usize = 10_000;
/// Reserved ways per tenant in every pool shape.
const RESERVED: u32 = 2;

/// One interval of synthetic telemetry, in metric space. The rig inverts
/// `perf_events::IntervalMetrics`'s formulas to produce counter deltas.
#[derive(Clone, Copy, Debug)]
struct Spec {
    ipc: f64,
    miss_rate: f64,
    llc_ref_per_instr: f64,
    mem_access_per_instr: f64,
}

impl Spec {
    /// A steady Keeper: real LLC use, miss rate between the donor and
    /// growth thresholds, flat IPC. Background tenants run this forever.
    fn keeper(ipc: f64) -> Spec {
        Spec {
            ipc,
            miss_rate: 0.0175,
            llc_ref_per_instr: 0.2,
            mem_access_per_instr: MAPI_BASE,
        }
    }

    fn with_miss_rate(self, miss_rate: f64) -> Spec {
        Spec { miss_rate, ..self }
    }
}

/// Accumulates per-interval deltas into the monotonic counter totals the
/// controller reads.
struct Rig {
    totals: Vec<CounterSnapshot>,
}

impl Rig {
    fn new(n: usize) -> Rig {
        Rig {
            totals: vec![CounterSnapshot::default(); n],
        }
    }

    fn tick(&mut self, specs: &[Spec]) -> Vec<CounterSnapshot> {
        for (t, s) in self.totals.iter_mut().zip(specs) {
            let llc_ref = s.llc_ref_per_instr * INSTRUCTIONS;
            t.ret_ins += INSTRUCTIONS as u64;
            t.cycles += (INSTRUCTIONS / s.ipc).round() as u64;
            t.l1_ref += (s.mem_access_per_instr * INSTRUCTIONS).round() as u64;
            t.llc_ref += llc_ref.round() as u64;
            t.llc_miss += (s.miss_rate * llc_ref).round() as u64;
        }
        self.totals.clone()
    }
}

#[derive(Clone, Copy, Debug)]
enum MissBand {
    Negligible,
    Moderate,
    High,
}

#[derive(Clone, Copy, Debug)]
enum IpcDelta {
    WellBelow,
    At,
    WellAbove,
}

/// One point of the abstracted telemetry lattice.
#[derive(Clone, Copy, Debug)]
struct LatticePoint {
    low_llc_use: bool,
    miss: MissBand,
    ipc: IpcDelta,
    phase_change: bool,
}

fn lattice() -> Vec<LatticePoint> {
    let mut points = Vec::new();
    for low_llc_use in [false, true] {
        for miss in [MissBand::Negligible, MissBand::Moderate, MissBand::High] {
            for ipc in [IpcDelta::WellBelow, IpcDelta::At, IpcDelta::WellAbove] {
                for phase_change in [false, true] {
                    points.push(LatticePoint {
                        low_llc_use,
                        miss,
                        ipc,
                        phase_change,
                    });
                }
            }
        }
    }
    points
}

impl LatticePoint {
    /// The concrete telemetry realizing this lattice point, relative to
    /// the probe tenant's IPC at the end of its preamble.
    fn spec(&self, base_ipc: f64) -> Spec {
        Spec {
            ipc: match self.ipc {
                IpcDelta::WellBelow => base_ipc * 0.5,
                IpcDelta::At => base_ipc,
                IpcDelta::WellAbove => base_ipc * 1.5,
            },
            miss_rate: match self.miss {
                MissBand::Negligible => 0.0025,
                MissBand::Moderate => 0.0175,
                MissBand::High => 0.5,
            },
            llc_ref_per_instr: if self.low_llc_use { 0.0005 } else { 0.2 },
            mem_access_per_instr: if self.phase_change {
                MAPI_SHIFTED
            } else {
                MAPI_BASE
            },
        }
    }
}

/// Pool shape: `tenants` workloads of [`RESERVED`] ways each plus
/// `free_ways` unreserved ways.
#[derive(Clone, Copy, Debug)]
struct Pool {
    tenants: u32,
    free_ways: u32,
}

impl Pool {
    fn total_ways(&self) -> u32 {
        self.tenants * RESERVED + self.free_ways
    }
}

/// Config corner under test.
#[derive(Clone, Copy, Debug)]
struct Corner {
    min_ways: u32,
    streaming_multiplier: u32,
    settle_intervals: u32,
}

impl Corner {
    fn config(&self) -> DcatConfig {
        DcatConfig {
            min_ways: self.min_ways,
            streaming_multiplier: self.streaming_multiplier,
            settle_intervals: self.settle_intervals,
            ..DcatConfig::default()
        }
    }
}

const ALL_STATES: [WorkloadClass; 6] = [
    WorkloadClass::Reclaim,
    WorkloadClass::Keeper,
    WorkloadClass::Donor,
    WorkloadClass::Unknown,
    WorkloadClass::Receiver,
    WorkloadClass::Streaming,
];

/// One fully specified exploration.
#[derive(Clone, Copy, Debug)]
struct Scenario {
    corner: Corner,
    pool: Pool,
    start: WorkloadClass,
    point: LatticePoint,
}

enum Outcome {
    /// Preamble reached the start state and every property held.
    Explored { ticks: u32 },
    /// The controller cannot reach this start state in this pool/config
    /// (e.g. Receiver with no free pool) — skipped, not counted.
    Unreachable,
}

struct Violation {
    scenario: Scenario,
    tick: u64,
    message: String,
}

/// Asserts the per-tick safety properties; returns the first violation.
fn check_tick(ctl: &DcatController, corner: &Corner, pool: &Pool) -> Result<(), String> {
    let views = ctl.domain_views();
    dcat::invariants::check(&views, pool.total_ways(), corner.min_ways)
        .map_err(|v| v.to_string())?;
    for (i, v) in views.iter().enumerate() {
        // Reclaim restores the reserved allocation in the same interval
        // it is declared (the paper gives it absolute priority).
        if v.class == WorkloadClass::Reclaim && v.ways != v.reserved_ways {
            return Err(format!(
                "domain {i} is Reclaim with {} ways (reserved {})",
                v.ways, v.reserved_ways
            ));
        }
    }
    Ok(())
}

/// Drives one scenario end to end.
fn run_scenario(s: &Scenario) -> Result<Outcome, Violation> {
    let n = s.pool.tenants as usize;
    let probe = n - 1; // adjacent to the free run at the top of the cache
    let mut cat = InMemoryController::new(
        CatCapabilities::with_ways(s.pool.total_ways()),
        s.pool.tenants,
    );
    let handles: Vec<WorkloadHandle> = (0..n)
        .map(|i| WorkloadHandle::new(format!("vm{i}"), vec![i as u32], RESERVED))
        .collect();
    let mut ctl = DcatController::new(s.corner.config(), handles, &mut cat)
        .expect("scenario configs are valid");
    let mut rig = Rig::new(n);

    // --- Preamble: steer the probe tenant into the start state. ---
    let mut ipc = 1.0;
    let mut ticks = 0u32;
    loop {
        if ctl.class_of(probe) == s.start {
            break;
        }
        if ticks >= MAX_PREAMBLE_TICKS {
            return Ok(Outcome::Unreachable);
        }
        let current = ctl.class_of(probe);
        let spec = match s.start {
            // Reclaim is the first tick's state (a fresh phase); Keeper
            // follows once the baseline is measured at the reserved size.
            WorkloadClass::Reclaim | WorkloadClass::Keeper => Spec::keeper(ipc),
            WorkloadClass::Donor => {
                if current == WorkloadClass::Keeper {
                    Spec::keeper(ipc).with_miss_rate(0.0025)
                } else {
                    Spec::keeper(ipc)
                }
            }
            WorkloadClass::Unknown | WorkloadClass::Streaming => {
                if current == WorkloadClass::Keeper || current == WorkloadClass::Unknown {
                    Spec::keeper(ipc).with_miss_rate(0.5)
                } else {
                    Spec::keeper(ipc)
                }
            }
            WorkloadClass::Receiver => match current {
                // Raise IPC every probing tick so the grown allocation
                // is judged a clear improvement.
                WorkloadClass::Unknown => {
                    ipc *= 1.15;
                    Spec::keeper(ipc).with_miss_rate(0.5)
                }
                WorkloadClass::Keeper => Spec::keeper(ipc).with_miss_rate(0.5),
                _ => Spec::keeper(ipc),
            },
        };
        let mut specs = vec![Spec::keeper(1.0); n];
        specs[probe] = spec;
        let snaps = rig.tick(&specs);
        ctl.tick(&snaps, &mut cat).map_err(|e| Violation {
            scenario: *s,
            tick: ctl.intervals(),
            message: format!("tick failed: {e}"),
        })?;
        check_tick(&ctl, &s.corner, &s.pool).map_err(|m| Violation {
            scenario: *s,
            tick: ctl.intervals(),
            message: m,
        })?;
        ticks += 1;
    }

    // --- Lattice point, then hold it fixed. ---
    // Long enough to exceed the probe-termination bound: every judged
    // interval an Unknown either grows (bounded by the streaming cap and
    // the free pool) or resolves, and judgement comes at most every
    // settle_intervals + 1 ticks.
    let cap = RESERVED * s.corner.streaming_multiplier;
    let hold = (s.corner.settle_intervals + 1) * (cap + s.pool.free_ways + 2) + 6;
    let spec = s.point.spec(ipc);
    let mut classes = Vec::with_capacity(hold as usize + 1);
    for _ in 0..=hold {
        let mut specs = vec![Spec::keeper(1.0); n];
        specs[probe] = spec;
        let snaps = rig.tick(&specs);
        ctl.tick(&snaps, &mut cat).map_err(|e| Violation {
            scenario: *s,
            tick: ctl.intervals(),
            message: format!("tick failed: {e}"),
        })?;
        check_tick(&ctl, &s.corner, &s.pool).map_err(|m| Violation {
            scenario: *s,
            tick: ctl.intervals(),
            message: m,
        })?;
        classes.push(ctl.class_of(probe));
        ticks += 1;
    }

    // Oscillation: under fixed telemetry the Keeper<->Donor decision is
    // deterministic, so edges cannot repeat beyond the donor-floor
    // ratchet's bounded retries after a baseline reclaim.
    let edges = |from: WorkloadClass, to: WorkloadClass| {
        classes
            .windows(2)
            .filter(|w| w[0] == from && w[1] == to)
            .count()
    };
    let kd = edges(WorkloadClass::Keeper, WorkloadClass::Donor);
    let dk = edges(WorkloadClass::Donor, WorkloadClass::Keeper);
    if kd > 2 || dk > 2 {
        return Err(Violation {
            scenario: *s,
            tick: ctl.intervals(),
            message: format!(
                "Keeper<->Donor oscillation under fixed telemetry: {kd} K->D, {dk} D->K edges"
            ),
        });
    }

    // Probe termination: the hold outlasts the growth bound, so an
    // Unknown verdict must have resolved by the end of it.
    if *classes.last().expect("hold ran") == WorkloadClass::Unknown {
        return Err(Violation {
            scenario: *s,
            tick: ctl.intervals(),
            message: format!(
                "probe did not terminate: still Unknown after {hold} fixed-telemetry intervals"
            ),
        });
    }

    Ok(Outcome::Explored { ticks })
}

/// Ticks each fault-schedule exploration runs for.
const FAULT_TICKS: u64 = 48;
/// Injection probability per (tick, fault-kind) draw.
const FAULT_RATE: f64 = 0.3;

/// Statistics from one fault-schedule exploration.
struct FaultRun {
    ticks: u64,
    degraded: u64,
    injected: usize,
}

/// One violation found by the fault-schedule dimension.
struct FaultViolation {
    corner: Corner,
    pool: Pool,
    seed: u64,
    tick: u64,
    message: String,
}

/// Drives a controller through a seeded random fault schedule and checks
/// the allocation invariants after **every** tick, degraded or not.
///
/// This is the model-checking twin of the daemon's resilient loop:
/// backend faults are injected by a real [`FaultingController`] under a
/// real retry wrapper, telemetry faults are abstracted into per-domain
/// validity flags for [`DcatController::tick_validated`], and a
/// transient tick failure degrades (the previous allocation stands)
/// instead of aborting. The temporal properties of the fault-free
/// dimension (Reclaim timing, probe termination) do not apply — a
/// degraded tick may legitimately delay them — but the safety invariants
/// must hold unconditionally.
fn run_fault_scenario(corner: &Corner, pool: &Pool, seed: u64) -> Result<FaultRun, FaultViolation> {
    let n = pool.tenants as usize;
    let probe = n - 1;
    let plan = FaultPlan::random(seed, FAULT_TICKS, FAULT_RATE);
    let inner = FaultingController::new(
        InMemoryController::new(CatCapabilities::with_ways(pool.total_ways()), pool.tenants),
        plan.clone(),
    );
    let mut cat = RetryingController::new(inner, RetryPolicy::immediate(3));
    let handles: Vec<WorkloadHandle> = (0..n)
        .map(|i| WorkloadHandle::new(format!("vm{i}"), vec![i as u32], RESERVED))
        .collect();
    let mut ctl = DcatController::new(corner.config(), handles, &mut cat)
        .expect("scenario configs are valid");
    let mut rig = Rig::new(n);
    let mut degraded = 0u64;

    for tick in 1..=FAULT_TICKS {
        cat.inner_mut().set_tick(tick);
        // Alternate the probe between growth-seeking and donation every
        // few ticks so masks keep changing and backend faults actually
        // land on program/assign calls.
        let spec = if (tick / 4) % 2 == 0 {
            Spec::keeper(1.0).with_miss_rate(0.5)
        } else {
            Spec::keeper(1.0).with_miss_rate(0.0025)
        };
        let mut specs = vec![Spec::keeper(1.0); n];
        specs[probe] = spec;
        let snaps = rig.tick(&specs);

        // The telemetry half of the schedule, abstracted to what the
        // daemon's sampling layer would conclude: a whole-file fault
        // invalidates every domain's interval, a row-level fault just
        // the probe's. Read-once faults are absorbed by the retry.
        let mut valid = vec![true; n];
        if plan.contains(tick, Fault::TelemetryRead) || plan.contains(tick, Fault::TelemetryStale) {
            valid.fill(false);
        } else if plan.contains(tick, Fault::TelemetryTruncated) {
            valid[probe] = false;
        }

        match ctl.tick_validated(&snaps, &valid, &mut cat) {
            Ok(_) => {}
            Err(e) if e.is_transient() => degraded += 1,
            Err(e) => {
                return Err(FaultViolation {
                    corner: *corner,
                    pool: *pool,
                    seed,
                    tick,
                    message: format!("fatal error under injected faults: {e}"),
                });
            }
        }
        if let Err(m) =
            dcat::invariants::check(&ctl.domain_views(), pool.total_ways(), corner.min_ways)
        {
            return Err(FaultViolation {
                corner: *corner,
                pool: *pool,
                seed,
                tick,
                message: m.to_string(),
            });
        }
    }
    Ok(FaultRun {
        ticks: FAULT_TICKS,
        degraded,
        injected: cat.inner_mut().injected().len(),
    })
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");

    let mut corners = Vec::new();
    for min_ways in [1u32, 2] {
        for streaming_multiplier in [1u32, 3] {
            for settle_intervals in [1u32, 3] {
                corners.push(Corner {
                    min_ways,
                    streaming_multiplier,
                    settle_intervals,
                });
            }
        }
    }
    let pools: Vec<Pool> = if smoke {
        [(1, 1), (2, 0), (3, 2), (4, 3)]
            .iter()
            .map(|&(tenants, free_ways)| Pool { tenants, free_ways })
            .collect()
    } else {
        let mut pools = Vec::new();
        for tenants in 1..=4 {
            for free_ways in 0..=3 {
                pools.push(Pool { tenants, free_ways });
            }
        }
        pools
    };

    // settle_intervals = 0 is not a runnable corner: the controller must
    // refuse it at construction (an allocation change could never be
    // judged on warmed telemetry).
    let mut rejected = 0usize;
    for corner in &corners {
        let cfg = DcatConfig {
            settle_intervals: 0,
            ..corner.config()
        };
        let mut cat = InMemoryController::new(CatCapabilities::with_ways(8), 1);
        let handles = vec![WorkloadHandle::new("vm0", vec![0], RESERVED)];
        assert!(
            DcatController::new(cfg, handles, &mut cat).is_err(),
            "settle_intervals = 0 must be rejected at construction"
        );
        rejected += 1;
    }

    let mut explored = 0usize;
    let mut skipped = 0usize;
    let mut total_ticks = 0u64;
    let mut violations: Vec<Violation> = Vec::new();
    let points = lattice();

    for corner in &corners {
        for pool in &pools {
            for start in ALL_STATES {
                for point in &points {
                    let scenario = Scenario {
                        corner: *corner,
                        pool: *pool,
                        start,
                        point: *point,
                    };
                    match run_scenario(&scenario) {
                        Ok(Outcome::Explored { ticks }) => {
                            explored += 1;
                            total_ticks += u64::from(ticks);
                        }
                        Ok(Outcome::Unreachable) => skipped += 1,
                        Err(v) => violations.push(v),
                    }
                }
            }
        }
    }

    println!(
        "dcat-verify: explored {explored} (state, telemetry, pool, config) configurations \
         ({skipped} unreachable combinations skipped, {rejected} invalid configs rejected \
         at construction, {total_ticks} controller intervals driven)"
    );

    // --- Fault-schedule dimension: seeded random fault injection. ---
    let fault_seeds: u64 = if smoke { 2 } else { 8 };
    let mut fault_runs = 0usize;
    let mut fault_ticks = 0u64;
    let mut fault_degraded = 0u64;
    let mut fault_injected = 0usize;
    let mut fault_violations: Vec<FaultViolation> = Vec::new();
    for (ci, corner) in corners.iter().enumerate() {
        for (pi, pool) in pools.iter().enumerate() {
            for stream in 0..fault_seeds {
                let seed = smallrng::split_seed(
                    0xD_CA7_FA17,
                    ((ci as u64) << 32) | ((pi as u64) << 16) | stream,
                );
                match run_fault_scenario(corner, pool, seed) {
                    Ok(run) => {
                        fault_runs += 1;
                        fault_ticks += run.ticks;
                        fault_degraded += run.degraded;
                        fault_injected += run.injected;
                    }
                    Err(v) => fault_violations.push(v),
                }
            }
        }
    }
    println!(
        "dcat-verify: fault dimension ran {fault_runs} seeded schedules \
         ({fault_ticks} ticks, {fault_injected} faults injected, \
         {fault_degraded} degraded ticks, invariants checked every tick)"
    );
    if !fault_violations.is_empty() {
        eprintln!("{} fault-dimension violations:", fault_violations.len());
        for v in fault_violations.iter().take(20) {
            eprintln!(
                "  tick {} of corner {:?} pool {:?} seed {}: {}",
                v.tick, v.corner, v.pool, v.seed, v.message
            );
        }
        std::process::exit(1);
    }
    assert!(
        fault_injected > 0 && fault_degraded > 0,
        "the fault dimension must actually inject faults and degrade ticks \
         (injected {fault_injected}, degraded {fault_degraded})"
    );

    if !violations.is_empty() {
        eprintln!("{} property violations:", violations.len());
        for v in violations.iter().take(20) {
            eprintln!("  interval {} of {:?}: {}", v.tick, v.scenario, v.message);
        }
        std::process::exit(1);
    }
    if !smoke && explored < EXPLORED_FLOOR {
        eprintln!(
            "explored {explored} configurations, below the documented floor of {EXPLORED_FLOOR}"
        );
        std::process::exit(1);
    }
    println!("all invariants and temporal properties held");
}
