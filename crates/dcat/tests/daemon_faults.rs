//! End-to-end fault-tolerance test: the daemon lifecycle of
//! `daemon_e2e.rs` re-run under a scripted [`FaultPlan`] covering five
//! distinct fault kinds. The loop must survive every fault, hold the
//! previous allocation on degraded ticks, log a structured event for
//! each injected fault, never violate the allocation invariants, and —
//! once the faults clear — converge to the same final allocation as a
//! fault-free run of the identical scenario.

use std::path::Path;
use std::time::Duration;

use dcat::daemon::{run_daemon_with, DaemonConfig, ResiliencePolicy};
use dcat::{DcatConfig, Event, WorkloadClass, WorkloadHandle};
use perf_events::CounterSnapshot;
use resctrl::fault::{Fault, FaultPlan};
use resctrl::{CatCapabilities, FsBackend};

const RESERVED: u32 = 4;
const GROWTH_TICKS: std::ops::RangeInclusive<u64> = 4..=9;
const PHASE_JUMP_TICK: u64 = 10;
const MAX_TICKS: u64 = 16;

const STALE_TICK: u64 = 3;
const TRUNCATION_TICK: u64 = 5;
const READ_FAIL_TICK: u64 = 7;
const READ_ONCE_TICK: u64 = 8;
// The phase jump forces a Reclaim shrink at tick 10, so a COS write is
// guaranteed to be attempted — and to fail — on this tick.
const COS_FAIL_TICK: u64 = PHASE_JUMP_TICK;

fn snapshot(l1: u64, llc_r: u64, llc_m: u64, ins: u64, cyc: u64) -> CounterSnapshot {
    CounterSnapshot {
        l1_ref: l1,
        llc_ref: llc_r,
        llc_miss: llc_m,
        ret_ins: ins,
        cycles: cyc,
    }
}

fn grower_delta(k: u64) -> CounterSnapshot {
    if GROWTH_TICKS.contains(&k) {
        let pct = 0.15 * (k - GROWTH_TICKS.start() + 1) as f64;
        snapshot(
            340_000,
            120_000,
            60_000,
            1_000_000,
            (20_000_000.0 / (1.0 + pct)) as u64,
        )
    } else if k < PHASE_JUMP_TICK {
        snapshot(340_000, 120_000, 60_000, 1_000_000, 20_000_000)
    } else {
        // The new phase is compute-bound: the signature jump (0.34 →
        // 0.90) trips the phase detector, and the near-zero LLC traffic
        // then classifies the domain as a Donor — a stable fixed point
        // both the faulty and the fault-free run must converge to.
        snapshot(900_000, 100, 10, 1_000_000, 10_000_000)
    }
}

fn quiet_delta() -> CounterSnapshot {
    snapshot(20_000, 100, 10, 1_000_000, 800_000)
}

fn write_telemetry(path: &Path, grower: &CounterSnapshot, quiet: &CounterSnapshot) {
    let line = |name: &str, s: &CounterSnapshot| {
        format!(
            "{name},{},{},{},{},{}",
            s.l1_ref, s.llc_ref, s.llc_miss, s.ret_ins, s.cycles
        )
    };
    std::fs::write(
        path,
        format!(
            "# name,l1_ref,llc_ref,llc_miss,ret_ins,cycles\n{}\n{}\n",
            line("grower", grower),
            line("quiet", quiet)
        ),
    )
    .unwrap();
}

struct TickRecord {
    tick: u64,
    degraded: bool,
    ways: Vec<u32>,
    events: Vec<Event>,
}

/// Runs the shared lifecycle scenario under `plan`; returns the per-tick
/// records and the final reports' `(name, class, ways)`.
fn run_scenario(
    tag: &str,
    plan: Option<FaultPlan>,
) -> (Vec<TickRecord>, Vec<(String, WorkloadClass, u32)>) {
    let root = std::env::temp_dir().join(format!(
        "dcatd-faults-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&root);
    drop(FsBackend::create_fixture(&root, CatCapabilities::with_ways(20), 8).unwrap());

    let telemetry = root.join("telemetry.csv");
    let mut grower_total = grower_delta(1);
    let mut quiet_total = quiet_delta();
    write_telemetry(&telemetry, &grower_total, &quiet_total);

    let cfg = DaemonConfig {
        resctrl_root: root.clone(),
        telemetry_path: telemetry.clone(),
        domains: vec![
            WorkloadHandle::new("grower", vec![0, 1], RESERVED),
            WorkloadHandle::new("quiet", vec![2, 3], RESERVED),
        ],
        dcat: DcatConfig {
            settle_intervals: 1,
            ..DcatConfig::default()
        },
        interval: Duration::from_millis(0),
        max_ticks: Some(MAX_TICKS),
        resilience: ResiliencePolicy {
            retry: resctrl::retry::RetryPolicy::immediate(3),
            ..ResiliencePolicy::default()
        },
        fault_plan: plan,
        obs: dcat::daemon::ObsOptions::default(),
    };

    let mut history: Vec<TickRecord> = Vec::new();
    let reports = run_daemon_with(&cfg, |obs| {
        history.push(TickRecord {
            tick: obs.tick,
            degraded: obs.degraded,
            ways: obs.reports.iter().map(|r| r.ways).collect(),
            events: obs.events.to_vec(),
        });
        // The sampler's totals advance every interval whether or not the
        // daemon managed to read them — exactly like real hardware.
        grower_total = grower_total.merged_with(&grower_delta(obs.tick + 1));
        quiet_total = quiet_total.merged_with(&quiet_delta());
        write_telemetry(&telemetry, &grower_total, &quiet_total);
    })
    .unwrap();

    let finals = reports
        .iter()
        .map(|r| (r.name.clone(), r.class, r.ways))
        .collect();
    std::fs::remove_dir_all(&root).unwrap();
    (history, finals)
}

fn fault_plan() -> FaultPlan {
    FaultPlan::scripted([
        (STALE_TICK, Fault::TelemetryStale),
        (TRUNCATION_TICK, Fault::TelemetryTruncated),
        (READ_FAIL_TICK, Fault::TelemetryRead),
        (READ_ONCE_TICK, Fault::TelemetryReadOnce),
        (COS_FAIL_TICK, Fault::CosWrite),
    ])
}

#[test]
fn daemon_survives_a_scripted_fault_schedule() {
    let (history, faulty_finals) = run_scenario("faulty", Some(fault_plan()));
    let (clean_history, clean_finals) = run_scenario("clean", None);

    // The loop ran to completion despite five distinct fault kinds.
    assert_eq!(history.len() as u64, MAX_TICKS);
    assert_eq!(clean_history.len() as u64, MAX_TICKS);

    // A fault-free run generates no events and no degraded ticks.
    for rec in &clean_history {
        assert!(!rec.degraded, "clean run degraded at tick {}", rec.tick);
        assert!(
            rec.events.is_empty(),
            "clean run produced events at tick {}: {:?}",
            rec.tick,
            rec.events
        );
    }

    let at = |tick: u64| -> &TickRecord { &history[(tick - 1) as usize] };
    let has = |tick: u64, pred: &dyn Fn(&Event) -> bool| at(tick).events.iter().any(pred);

    // Every scheduled fault left its mark in the event log.
    assert!(
        has(STALE_TICK, &|e| matches!(e, Event::StaleSample { .. })),
        "no StaleSample at tick {STALE_TICK}: {:?}",
        at(STALE_TICK).events
    );
    assert!(
        has(TRUNCATION_TICK, &|e| matches!(
            e,
            Event::RowMalformed { .. }
        )),
        "no RowMalformed at tick {TRUNCATION_TICK}: {:?}",
        at(TRUNCATION_TICK).events
    );
    assert!(
        has(READ_FAIL_TICK, &|e| matches!(
            e,
            Event::TelemetryExhausted { .. }
        )),
        "no TelemetryExhausted at tick {READ_FAIL_TICK}: {:?}",
        at(READ_FAIL_TICK).events
    );
    assert!(
        has(READ_FAIL_TICK, &|e| matches!(
            e,
            Event::DegradedTick {
                reason: dcat::DegradeReason::Telemetry
            }
        )),
        "tick {READ_FAIL_TICK} not degraded on telemetry"
    );
    assert!(
        has(READ_ONCE_TICK, &|e| matches!(
            e,
            Event::TelemetryRetried { .. }
        )),
        "no TelemetryRetried at tick {READ_ONCE_TICK}: {:?}",
        at(READ_ONCE_TICK).events
    );
    assert!(
        !at(READ_ONCE_TICK).degraded,
        "a single read failure must be absorbed by the retry, not degrade the tick"
    );
    assert!(
        has(COS_FAIL_TICK, &|e| matches!(
            e,
            Event::ResctrlExhausted { .. }
        )),
        "no ResctrlExhausted at tick {COS_FAIL_TICK}: {:?}",
        at(COS_FAIL_TICK).events
    );
    assert!(
        has(COS_FAIL_TICK, &|e| matches!(
            e,
            Event::DegradedTick {
                reason: dcat::DegradeReason::Resctrl
            }
        )),
        "tick {COS_FAIL_TICK} not degraded on resctrl"
    );

    // Degraded ticks hold the previous allocation, and the invariants
    // hold on every tick, degraded or not.
    let mut saw_degraded = false;
    for w in history.windows(2) {
        let (prev, cur) = (&w[0], &w[1]);
        if cur.degraded {
            saw_degraded = true;
            assert_eq!(
                cur.ways, prev.ways,
                "degraded tick {} changed the allocation",
                cur.tick
            );
        }
    }
    assert!(saw_degraded);
    for rec in &history {
        assert!(
            !rec.events
                .iter()
                .any(|e| matches!(e, Event::InvariantViolation { .. })),
            "invariant violation at tick {}: {:?}",
            rec.tick,
            rec.events
        );
    }

    // Once the faults clear, the run converges to the fault-free result.
    assert_eq!(
        faulty_finals, clean_finals,
        "faulty run did not converge to the fault-free allocation"
    );
}
