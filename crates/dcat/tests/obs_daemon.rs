//! Observability wiring through the daemon: per-tick spans, the metrics
//! snapshot returned by [`dcat::daemon::run_daemon_observed`], and the
//! flight-recorder dump that fires on quarantine.
//!
//! All assertions run against fixture trees — no wall clock anywhere, so
//! every number here is reproducible bit-for-bit.

use std::path::PathBuf;
use std::time::Duration;

use dcat::daemon::{run_daemon_observed, DaemonConfig, ObsOptions, ResiliencePolicy};
use dcat::{DcatConfig, WorkloadHandle};
use dcat_obs::{check_jsonl, check_prometheus, MetricValue};
use perf_events::CounterSnapshot;
use resctrl::{CatCapabilities, FsBackend};

const RESERVED: u32 = 4;
const MAX_TICKS: u64 = 6;

fn fixture_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!(
        "dcatd-obs-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&root);
    drop(FsBackend::create_fixture(&root, CatCapabilities::with_ways(20), 8).unwrap());
    root
}

fn write_telemetry(path: &PathBuf, rows: &[(&str, &CounterSnapshot)]) {
    let mut text = String::from("# name,l1_ref,llc_ref,llc_miss,ret_ins,cycles\n");
    for (name, s) in rows {
        text.push_str(&format!(
            "{name},{},{},{},{},{}\n",
            s.l1_ref, s.llc_ref, s.llc_miss, s.ret_ins, s.cycles
        ));
    }
    std::fs::write(path, text).unwrap();
}

fn steady_total(tick: u64) -> CounterSnapshot {
    CounterSnapshot {
        l1_ref: 340_000 * tick,
        llc_ref: 120_000 * tick,
        llc_miss: 60_000 * tick,
        ret_ins: 1_000_000 * tick,
        cycles: 20_000_000 * tick,
    }
}

fn base_cfg(root: PathBuf, domains: Vec<WorkloadHandle>) -> DaemonConfig {
    DaemonConfig {
        telemetry_path: root.join("telemetry.csv"),
        resctrl_root: root,
        domains,
        dcat: DcatConfig::default(),
        interval: Duration::from_millis(0),
        max_ticks: Some(MAX_TICKS),
        resilience: ResiliencePolicy::default(),
        fault_plan: None,
        obs: ObsOptions::default(),
    }
}

#[test]
fn every_tick_carries_the_full_span_tree_and_metrics_count_ticks() {
    let root = fixture_root("spans");
    let cfg = base_cfg(
        root,
        vec![WorkloadHandle::new("solo", vec![0, 1], RESERVED)],
    );
    write_telemetry(&cfg.telemetry_path, &[("solo", &steady_total(1))]);

    let mut span_names_per_tick = Vec::new();
    let telemetry_path = cfg.telemetry_path.clone();
    let outcome = run_daemon_observed(&cfg, |obs| {
        span_names_per_tick.push(obs.spans.iter().map(|s| s.name).collect::<Vec<_>>());
        assert!(obs.flight_dump.is_none(), "healthy run must not dump");
        write_telemetry(&telemetry_path, &[("solo", &steady_total(obs.tick + 1))]);
    })
    .unwrap();

    assert_eq!(span_names_per_tick.len() as u64, MAX_TICKS);
    for names in &span_names_per_tick {
        // Inner spans drain before the enclosing tick; the controller's
        // six Figure-4 stages sit between telemetry and the tick close.
        assert_eq!(
            *names,
            [
                "telemetry",
                "collect",
                "phase_detect",
                "baseline",
                "categorize",
                "allocate",
                "apply",
                "tick"
            ]
        );
    }

    let ticks = outcome.metrics.get("dcat_ticks_total", &[]);
    assert_eq!(ticks, Some(&MetricValue::Counter(MAX_TICKS)));
    let gauge = outcome
        .metrics
        .get("dcat_domain_ways", &[("domain", "solo")]);
    assert!(matches!(gauge, Some(MetricValue::Gauge(v)) if *v >= f64::from(RESERVED)));

    // Both export formats must pass the validators obs-dump --check uses.
    check_prometheus(&outcome.metrics.to_prometheus()).unwrap();
    check_jsonl(&outcome.metrics.to_jsonl()).unwrap();
    let lines = check_jsonl(&outcome.flight_dump).unwrap();
    // Header + one record per retained tick.
    assert_eq!(lines as u64, MAX_TICKS + 1);
}

#[test]
fn quarantine_triggers_a_flight_dump_carrying_the_recent_window() {
    let root = fixture_root("quarantine");
    let mut cfg = base_cfg(
        root,
        vec![
            WorkloadHandle::new("seen", vec![0, 1], RESERVED),
            WorkloadHandle::new("ghost", vec![2, 3], RESERVED),
        ],
    );
    cfg.resilience.quarantine_after = 3;
    cfg.obs.flight_recorder_ticks = 4;
    // "ghost" never appears in the feed: after 3 missed ticks it is
    // quarantined, and that tick's observation must carry the dump.
    write_telemetry(&cfg.telemetry_path, &[("seen", &steady_total(1))]);

    let mut dump_at: Option<(u64, String)> = None;
    let telemetry_path = cfg.telemetry_path.clone();
    let outcome = run_daemon_observed(&cfg, |obs| {
        if let Some(dump) = obs.flight_dump {
            dump_at.get_or_insert((obs.tick, dump.to_string()));
        }
        write_telemetry(&telemetry_path, &[("seen", &steady_total(obs.tick + 1))]);
    })
    .unwrap();

    let (tick, dump) = dump_at.expect("quarantine should trigger a dump");
    assert_eq!(tick, 3);
    let lines = check_jsonl(&dump).unwrap();
    assert_eq!(lines, 4, "header + the 3 ticks recorded so far");
    assert!(dump.contains("domain_quarantined"));

    let quarantine_events = outcome
        .metrics
        .get("dcat_events_total", &[("event", "domain_quarantined")]);
    assert_eq!(quarantine_events, Some(&MetricValue::Counter(1)));
    let gauge = outcome.metrics.get("dcat_quarantined_domains", &[]);
    assert_eq!(gauge, Some(&MetricValue::Gauge(1.0)));
}

#[test]
fn telemetry_outage_is_counted_under_its_own_degraded_reason() {
    let root = fixture_root("outage");
    let cfg = base_cfg(
        root,
        vec![WorkloadHandle::new("solo", vec![0, 1], RESERVED)],
    );
    write_telemetry(&cfg.telemetry_path, &[("solo", &steady_total(1))]);

    let telemetry_path = cfg.telemetry_path.clone();
    let outcome = run_daemon_observed(&cfg, |obs| {
        if obs.tick == 2 {
            // Vanish the feed for tick 3; restore it afterwards.
            let _ = std::fs::remove_file(&telemetry_path);
        } else {
            write_telemetry(&telemetry_path, &[("solo", &steady_total(obs.tick + 1))]);
        }
    })
    .unwrap();

    let degraded = outcome
        .metrics
        .get("dcat_degraded_ticks_total", &[("reason", "telemetry")]);
    assert_eq!(degraded, Some(&MetricValue::Counter(1)));
    let ticks = outcome.metrics.get("dcat_ticks_total", &[]);
    assert_eq!(ticks, Some(&MetricValue::Counter(MAX_TICKS)));
}
