//! End-to-end daemon test: [`dcat::daemon::run_daemon_with`] against a
//! fixture resctrl tree, with the telemetry CSV rewritten between ticks
//! from the observer hook — the test plays the external sampler's role
//! without a second thread.
//!
//! The script walks one workload through the full lifecycle the paper's
//! Figure 7 describes: phase + baseline establishment, growth with real
//! IPC gains (promotion to Receiver above the reserved size), then a
//! memory-signature jump (a new phase) that must trigger a Reclaim back
//! to the reserved allocation — all within `max_ticks`.

use std::path::PathBuf;
use std::time::Duration;

use dcat::daemon::{run_daemon_with, DaemonConfig};
use dcat::{DcatConfig, WorkloadClass, WorkloadHandle};
use perf_events::CounterSnapshot;
use resctrl::{CatCapabilities, FsBackend};

const RESERVED: u32 = 4;
const GROWTH_TICKS: std::ops::RangeInclusive<u64> = 4..=9;
const PHASE_JUMP_TICK: u64 = 10;
const MAX_TICKS: u64 = 12;

fn snapshot(l1: u64, llc_r: u64, llc_m: u64, ins: u64, cyc: u64) -> CounterSnapshot {
    CounterSnapshot {
        l1_ref: l1,
        llc_ref: llc_r,
        llc_miss: llc_m,
        ret_ins: ins,
        cycles: cyc,
    }
}

/// Per-interval delta of the cache-hungry workload at interval `k`
/// (1-based). Its memory signature (`l1_ref / ret_ins`) is 0.34 through
/// interval 9, then jumps to 0.90 — far past the 10% phase threshold.
fn grower_delta(k: u64) -> CounterSnapshot {
    if GROWTH_TICKS.contains(&k) {
        // IPC rises ~15% per interval while the cache grows: the improving
        // workload the controller must promote to Receiver.
        let pct = 0.15 * (k - GROWTH_TICKS.start() + 1) as f64;
        snapshot(
            340_000,
            120_000,
            60_000,
            1_000_000,
            (20_000_000.0 / (1.0 + pct)) as u64,
        )
    } else if k < PHASE_JUMP_TICK {
        // Missing hard at the reserved size: phase + baseline material.
        snapshot(340_000, 120_000, 60_000, 1_000_000, 20_000_000)
    } else {
        // New phase: very different memory intensity, steady thereafter.
        snapshot(900_000, 50_000, 25_000, 1_000_000, 10_000_000)
    }
}

/// The neighbor is compute-bound every interval: no LLC use, so it
/// donates its ways and keeps the free pool stocked for the grower.
fn quiet_delta() -> CounterSnapshot {
    snapshot(20_000, 100, 10, 1_000_000, 800_000)
}

fn write_telemetry(path: &PathBuf, grower: &CounterSnapshot, quiet: &CounterSnapshot) {
    let line = |name: &str, s: &CounterSnapshot| {
        format!(
            "{name},{},{},{},{},{}",
            s.l1_ref, s.llc_ref, s.llc_miss, s.ret_ins, s.cycles
        )
    };
    std::fs::write(
        path,
        format!(
            "# name,l1_ref,llc_ref,llc_miss,ret_ins,cycles\n{}\n{}\n",
            line("grower", grower),
            line("quiet", quiet)
        ),
    )
    .unwrap();
}

#[test]
fn daemon_promotes_a_receiver_and_reclaims_on_phase_change() {
    let root = std::env::temp_dir().join(format!(
        "dcatd-e2e-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&root);
    drop(FsBackend::create_fixture(&root, CatCapabilities::with_ways(20), 8).unwrap());

    let telemetry = root.join("telemetry.csv");
    let mut grower_total = grower_delta(1);
    let mut quiet_total = quiet_delta();
    write_telemetry(&telemetry, &grower_total, &quiet_total);

    let cfg = DaemonConfig {
        resctrl_root: root.clone(),
        telemetry_path: telemetry.clone(),
        domains: vec![
            WorkloadHandle::new("grower", vec![0, 1], RESERVED),
            WorkloadHandle::new("quiet", vec![2, 3], RESERVED),
        ],
        dcat: DcatConfig {
            settle_intervals: 1,
            ..DcatConfig::default()
        },
        interval: Duration::from_millis(0),
        max_ticks: Some(MAX_TICKS),
        resilience: dcat::daemon::ResiliencePolicy::default(),
        fault_plan: None,
        obs: dcat::daemon::ObsOptions::default(),
    };

    // (tick, grower class, grower ways, grower phase_changed, quiet ways).
    let mut history: Vec<(u64, WorkloadClass, u32, bool, u32)> = Vec::new();
    let reports = run_daemon_with(&cfg, |obs| {
        assert_eq!(obs.reports.len(), 2);
        assert!(!obs.degraded, "fault-free run must never degrade");
        history.push((
            obs.tick,
            obs.reports[0].class,
            obs.reports[0].ways,
            obs.reports[0].phase_changed,
            obs.reports[1].ways,
        ));
        // Play the sampler: accumulate the next interval's deltas into the
        // monotonic totals and rewrite the CSV the daemon reads next tick.
        grower_total = grower_total.merged_with(&grower_delta(obs.tick + 1));
        quiet_total = quiet_total.merged_with(&quiet_delta());
        write_telemetry(&telemetry, &grower_total, &quiet_total);
    })
    .unwrap();

    assert_eq!(history.len() as u64, MAX_TICKS, "one observation per tick");

    // The improving workload was promoted to Receiver, holding more than
    // its reserved ways, before the phase jump.
    let promotion = history
        .iter()
        .find(|(t, class, ways, ..)| {
            *t < PHASE_JUMP_TICK && *class == WorkloadClass::Receiver && *ways > RESERVED
        })
        .unwrap_or_else(|| panic!("no Receiver promotion above reserved; history {history:?}"));
    assert!(promotion.0 <= *GROWTH_TICKS.end());

    // The signature jump was detected as a phase change and the workload
    // reclaimed straight back to its reserved allocation.
    let (_, class, ways, phase_changed, _) = history[(PHASE_JUMP_TICK - 1) as usize];
    assert!(
        phase_changed,
        "phase jump not detected; history {history:?}"
    );
    assert_eq!(class, WorkloadClass::Reclaim);
    assert_eq!(ways, RESERVED, "reclaim must restore the reserved size");

    // The compute-bound neighbor was defunded to the minimum.
    assert_eq!(history.last().unwrap().4, 1);

    // The final reports match the last observation, and the programmed
    // partitions are visible in the fixture tree.
    let last = history.last().unwrap();
    assert_eq!(reports[0].ways, last.2);
    let schemata = std::fs::read_to_string(root.join("COS1").join("schemata")).unwrap();
    assert!(schemata.contains("L3:0="));

    std::fs::remove_dir_all(&root).unwrap();
}
