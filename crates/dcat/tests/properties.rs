//! Property-based tests: controller invariants under arbitrary telemetry.
//!
//! Whatever counter stream the workloads produce — including adversarial
//! nonsense — the controller must keep the hardware state legal: at most
//! the cache's total ways allocated, at least one way per workload,
//! non-overlapping masks, and Intel-valid CBMs.

use dcat::{DcatConfig, DcatController, WorkloadHandle};
use perf_events::CounterSnapshot;
use prop_lite::Gen;
use resctrl::{CacheController, CatCapabilities, CosId, InMemoryController};

/// One synthetic interval for one domain.
#[derive(Debug, Clone)]
struct IntervalSpec {
    active: bool,
    mem_per_instr_milli: u64, // 0..=1000
    miss_rate_milli: u64,     // 0..=1000
    cpi_milli: u64,           // 500..=80_000
}

fn interval_spec(g: &mut Gen) -> IntervalSpec {
    IntervalSpec {
        active: g.bool_with(0.8),
        mem_per_instr_milli: g.u64_in(0, 1000),
        miss_rate_milli: g.u64_in(0, 1000),
        cpi_milli: g.u64_in(500, 80_000),
    }
}

fn delta_of(spec: &IntervalSpec) -> CounterSnapshot {
    if !spec.active {
        return CounterSnapshot::default();
    }
    let instr = 1_000_000u64;
    let l1_ref = instr * spec.mem_per_instr_milli / 1000;
    let llc_ref = l1_ref / 3;
    CounterSnapshot {
        l1_ref,
        llc_ref,
        llc_miss: llc_ref * spec.miss_rate_milli / 1000,
        ret_ins: instr,
        cycles: instr * spec.cpi_milli / 1000,
    }
}

/// Hardware-state legality under arbitrary telemetry.
#[test]
fn controller_state_always_legal() {
    prop_lite::run_cases("controller_state_always_legal", 64, |g| {
        let domains = g.usize_in(1, 5);
        let reserved = g.u32_in(1, 3);
        let steps: Vec<Vec<IntervalSpec>> = g.vec_of(2, 19, |g| g.vec_of(1, 5, interval_spec));

        let mut cat = InMemoryController::new(CatCapabilities::with_ways(20), 16);
        let handles: Vec<WorkloadHandle> = (0..domains)
            .map(|i| {
                WorkloadHandle::new(
                    format!("d{i}"),
                    vec![(2 * i) as u32, (2 * i + 1) as u32],
                    reserved,
                )
            })
            .collect();
        let mut ctl = DcatController::new(
            DcatConfig {
                settle_intervals: 1,
                ..DcatConfig::default()
            },
            handles,
            &mut cat,
        )
        .unwrap();

        let mut totals = vec![CounterSnapshot::default(); domains];
        for step in steps {
            for (i, total) in totals.iter_mut().enumerate() {
                let spec = &step[i % step.len()];
                *total = total.merged_with(&delta_of(spec));
            }
            let reports = ctl.tick(&totals, &mut cat).unwrap();

            let total_ways: u32 = reports.iter().map(|r| r.ways).sum();
            assert!(total_ways <= 20, "oversubscribed: {total_ways}");
            assert!(reports.iter().all(|r| r.ways >= 1), "zero-way grant");
            assert!(!cat.has_overlapping_active_masks(), "overlapping masks");
            for (i, report) in reports.iter().enumerate() {
                let cos = CosId((i + 1) as u8);
                let mask = cat.cos_mask(cos).unwrap();
                assert!(mask.is_valid_for(20, 1), "illegal CBM {mask}");
                assert_eq!(mask.ways(), report.ways, "mask/report mismatch");
            }
        }
    });
}

/// An always-idle domain converges to the minimum allocation and an
/// always-hungry-and-improving domain never drops below its baseline.
#[test]
fn idle_shrinks_and_active_keeps_baseline() {
    prop_lite::run_cases("idle_shrinks_and_active_keeps_baseline", 64, |g| {
        let reserved = g.u32_in(2, 4);
        let ticks = g.usize_in(6, 19);

        let mut cat = InMemoryController::new(CatCapabilities::with_ways(20), 8);
        let handles = vec![
            WorkloadHandle::new("idle", vec![0, 1], reserved),
            WorkloadHandle::new("busy", vec![2, 3], reserved),
        ];
        let mut ctl = DcatController::new(
            DcatConfig {
                settle_intervals: 1,
                ..DcatConfig::default()
            },
            handles,
            &mut cat,
        )
        .unwrap();
        let mut busy_total = CounterSnapshot::default();
        let mut cycles_per_tick = 30_000_000u64;
        for _ in 0..ticks {
            // The busy domain improves a little every interval.
            cycles_per_tick = cycles_per_tick.saturating_sub(1_000_000).max(10_000_000);
            busy_total = busy_total.merged_with(&CounterSnapshot {
                l1_ref: 340_000,
                llc_ref: 120_000,
                llc_miss: 50_000,
                ret_ins: 1_000_000,
                cycles: cycles_per_tick,
            });
            let snaps = vec![CounterSnapshot::default(), busy_total];
            let reports = ctl.tick(&snaps, &mut cat).unwrap();
            assert!(
                reports[1].ways >= reserved,
                "hungry domain below baseline: {} < {reserved}",
                reports[1].ways
            );
        }
        assert_eq!(ctl.ways_of(0), 1, "idle domain should donate to 1 way");
    });
}
