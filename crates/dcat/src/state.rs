//! Workload classification states (the paper's Figure 6).

use std::fmt;

/// The class dCat assigns a workload each interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadClass {
    /// Would suffer with less cache but does not benefit from more; keeps
    /// its current allocation. The start state of every workload.
    Keeper,
    /// Does not benefit from its cache (idle, low LLC use, or negligible
    /// misses); shrinks toward the minimum allocation.
    Donor,
    /// Benefits from more cache and suffers from less; grows while the
    /// free pool lasts.
    Receiver,
    /// Misses heavily but never reuses cached data (cyclic access
    /// patterns); a special donor pinned at the minimum allocation.
    Streaming,
    /// Misses heavily but it is not yet known whether more cache helps;
    /// grows (with priority over Receivers) until a determination is made.
    Unknown,
    /// A phase change was detected; the workload returns to its reserved
    /// allocation to re-establish the baseline. Highest priority.
    Reclaim,
}

impl WorkloadClass {
    /// Whether this class is currently a candidate for receiving ways.
    pub fn wants_growth(self) -> bool {
        matches!(self, WorkloadClass::Receiver | WorkloadClass::Unknown)
    }

    /// Whether this class donates down to the minimum allocation.
    pub fn is_donor_like(self) -> bool {
        matches!(self, WorkloadClass::Donor | WorkloadClass::Streaming)
    }
}

impl fmt::Display for WorkloadClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            WorkloadClass::Keeper => "Keeper",
            WorkloadClass::Donor => "Donor",
            WorkloadClass::Receiver => "Receiver",
            WorkloadClass::Streaming => "Streaming",
            WorkloadClass::Unknown => "Unknown",
            WorkloadClass::Reclaim => "Reclaim",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn growth_and_donor_predicates() {
        assert!(WorkloadClass::Receiver.wants_growth());
        assert!(WorkloadClass::Unknown.wants_growth());
        assert!(!WorkloadClass::Keeper.wants_growth());
        assert!(!WorkloadClass::Streaming.wants_growth());
        assert!(WorkloadClass::Donor.is_donor_like());
        assert!(WorkloadClass::Streaming.is_donor_like());
        assert!(!WorkloadClass::Reclaim.is_donor_like());
    }

    #[test]
    fn display_names() {
        assert_eq!(WorkloadClass::Reclaim.to_string(), "Reclaim");
        assert_eq!(WorkloadClass::Unknown.to_string(), "Unknown");
    }
}
