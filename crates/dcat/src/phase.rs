//! Phase-change detection (paper Section 3.3).
//!
//! dCat's phase signature is **memory accesses per instruction**, estimated
//! as `l1_ref / ret_ins`. The paper verifies (its Figure 5) that the value
//! depends only on the workload's code, not on its cache allocation, which
//! makes it a safe signal: an allocation change never masquerades as a
//! phase change. A relative shift beyond the threshold (10% in the paper's
//! prototype) declares a new phase, invalidating the baseline IPC and the
//! current performance table.

/// Outcome of feeding one interval's signature to the detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PhaseChange {
    /// First observation ever (a freshly started workload).
    Initial,
    /// Signature within the threshold of the current phase.
    Unchanged,
    /// A new phase began.
    Changed {
        /// Signature of the phase being left.
        previous: f64,
        /// Signature of the new phase.
        current: f64,
    },
}

impl PhaseChange {
    /// Whether the baseline must be re-established.
    pub fn requires_rebaseline(self) -> bool {
        matches!(self, PhaseChange::Initial | PhaseChange::Changed { .. })
    }
}

/// Tracks one workload's phase signature.
#[derive(Debug, Clone)]
pub struct PhaseDetector {
    threshold: f64,
    signature: Option<f64>,
}

impl PhaseDetector {
    /// Creates a detector with the given relative-change threshold.
    ///
    /// # Panics
    ///
    /// Panics if the threshold is not positive.
    pub fn new(threshold: f64) -> Self {
        assert!(threshold > 0.0, "phase threshold must be positive");
        PhaseDetector {
            threshold,
            signature: None,
        }
    }

    /// Current phase signature, if any phase has been observed.
    pub fn signature(&self) -> Option<f64> {
        self.signature
    }

    /// Feeds the signature of the latest interval.
    pub fn observe(&mut self, mem_access_per_instr: f64) -> PhaseChange {
        match self.signature {
            None => {
                self.signature = Some(mem_access_per_instr);
                PhaseChange::Initial
            }
            Some(previous) => {
                let denom = previous.abs().max(1e-12);
                // A hair of tolerance keeps exact-threshold shifts (and
                // float rounding) from counting as changes.
                if (mem_access_per_instr - previous).abs() / denom > self.threshold + 1e-9 {
                    self.signature = Some(mem_access_per_instr);
                    PhaseChange::Changed {
                        previous,
                        current: mem_access_per_instr,
                    }
                } else {
                    PhaseChange::Unchanged
                }
            }
        }
    }

    /// Forgets the current phase (used when a workload goes idle, so its
    /// next activity is treated as a fresh phase).
    pub fn reset(&mut self) {
        self.signature = None;
    }

    /// Quantizes a signature for keying stored per-phase performance
    /// tables: signatures in the same bucket are "the same phase seen
    /// again" (paper Figure 12).
    pub fn bucket(signature: f64, quantum: f64) -> u64 {
        assert!(quantum > 0.0, "bucket quantum must be positive");
        // lint: allow(DL008, f64-to-u64 `as` saturates and maps NaN to 0; any stable bucket id works for keying)
        (signature / quantum).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_observation_is_initial() {
        let mut d = PhaseDetector::new(0.1);
        assert_eq!(d.observe(0.34), PhaseChange::Initial);
        assert_eq!(d.signature(), Some(0.34));
        assert!(PhaseChange::Initial.requires_rebaseline());
    }

    #[test]
    fn small_drift_is_unchanged() {
        let mut d = PhaseDetector::new(0.1);
        d.observe(0.30);
        assert_eq!(d.observe(0.32), PhaseChange::Unchanged);
        assert_eq!(d.observe(0.28), PhaseChange::Unchanged);
        // Signature is not dragged by drift within the phase.
        assert_eq!(d.signature(), Some(0.30));
    }

    #[test]
    fn large_shift_is_a_phase_change() {
        let mut d = PhaseDetector::new(0.1);
        d.observe(0.34);
        match d.observe(0.50) {
            PhaseChange::Changed { previous, current } => {
                assert!((previous - 0.34).abs() < 1e-12);
                assert!((current - 0.50).abs() < 1e-12);
            }
            other => panic!("expected change, got {other:?}"),
        }
        assert_eq!(d.signature(), Some(0.50));
    }

    #[test]
    fn exactly_threshold_is_not_a_change() {
        let mut d = PhaseDetector::new(0.1);
        d.observe(1.0);
        assert_eq!(d.observe(1.1), PhaseChange::Unchanged);
        assert_ne!(d.observe(1.12), PhaseChange::Unchanged);
    }

    #[test]
    fn reset_forgets_phase() {
        let mut d = PhaseDetector::new(0.1);
        d.observe(0.3);
        d.reset();
        assert_eq!(d.observe(0.3), PhaseChange::Initial);
    }

    #[test]
    fn buckets_group_similar_signatures() {
        let q = 0.02;
        assert_eq!(
            PhaseDetector::bucket(0.34, q),
            PhaseDetector::bucket(0.345, q)
        );
        assert_ne!(
            PhaseDetector::bucket(0.34, q),
            PhaseDetector::bucket(0.50, q)
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_threshold_rejected() {
        let _ = PhaseDetector::new(0.0);
    }
}
