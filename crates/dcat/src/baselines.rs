//! The paper's two comparison policies: unmanaged shared cache and static
//! CAT partitioning.

use perf_events::{CounterSnapshot, IntervalMetrics};
use resctrl::{CacheController, CatCapabilities, Cbm, CosId, LayoutPlanner, ResctrlError};

use crate::controller::{DomainReport, WorkloadHandle};
use crate::policy::CachePolicy;
use crate::state::WorkloadClass;

/// Shared metric bookkeeping for the non-dCat policies (the static
/// baselines here, and the clustering/share-accounting policies in
/// [`crate::lfoc`] and [`crate::memshare`]).
pub(crate) struct MetricsTracker {
    handles: Vec<WorkloadHandle>,
    last: Vec<CounterSnapshot>,
    baseline_ipc: Vec<Option<f64>>,
}

impl MetricsTracker {
    pub(crate) fn new(handles: Vec<WorkloadHandle>) -> Self {
        let n = handles.len();
        MetricsTracker {
            handles,
            last: vec![CounterSnapshot::default(); n],
            baseline_ipc: vec![None; n],
        }
    }

    /// The tracked domains, in report order.
    pub(crate) fn handles(&self) -> &[WorkloadHandle] {
        &self.handles
    }

    /// Consumes one tick's snapshots: computes each domain's interval
    /// delta, advances the stored counters, and latches the first active
    /// interval's IPC as that domain's baseline.
    pub(crate) fn advance(&mut self, snapshots: &[CounterSnapshot]) -> Vec<IntervalMetrics> {
        assert_eq!(
            snapshots.len(),
            self.handles.len(),
            "one snapshot per domain"
        );
        snapshots
            .iter()
            .enumerate()
            .map(|(i, snap)| {
                let delta = snap.delta_since(&self.last[i]);
                self.last[i] = *snap;
                let m = IntervalMetrics::from_delta(&delta);
                if self.baseline_ipc[i].is_none() && m.ipc > 0.0 {
                    self.baseline_ipc[i] = Some(m.ipc);
                }
                m
            })
            .collect()
    }

    /// Builds domain `i`'s report from an interval computed by
    /// [`MetricsTracker::advance`].
    pub(crate) fn report(
        &self,
        i: usize,
        m: &IntervalMetrics,
        ways: u32,
        class: WorkloadClass,
        cbm: Option<u64>,
    ) -> DomainReport {
        let baseline = self.baseline_ipc.get(i).copied().flatten();
        DomainReport {
            name: self
                .handles
                .get(i)
                .map(|h| h.name.clone())
                .unwrap_or_default(),
            class,
            ways,
            cbm,
            ipc: m.ipc,
            norm_ipc: baseline.map(|b| if b > 0.0 { m.ipc / b } else { 0.0 }),
            llc_miss_rate: m.llc_miss_rate,
            phase_changed: false,
            baseline_ipc: baseline,
            skipped: false,
        }
    }

    fn reports(
        &mut self,
        snapshots: &[CounterSnapshot],
        ways: &[u32],
        cbms: &[Option<u64>],
    ) -> Vec<DomainReport> {
        let metrics = self.advance(snapshots);
        metrics
            .iter()
            .enumerate()
            .map(|(i, m)| {
                self.report(
                    i,
                    m,
                    ways.get(i).copied().unwrap_or(0),
                    WorkloadClass::Keeper,
                    cbms.get(i).copied().flatten(),
                )
            })
            .collect()
    }
}

/// The unmanaged configuration: every core keeps the full LLC mask.
///
/// This is the "shared cache" column of the paper's figures — maximum
/// capacity for everyone, zero isolation.
pub struct SharedCachePolicy {
    tracker: MetricsTracker,
    total_ways: u32,
    /// The fully shared mask every domain effectively holds.
    full_cbm: u64,
}

impl SharedCachePolicy {
    /// Creates the policy; nothing is programmed (the hardware reset state
    /// is already fully shared).
    pub fn new(handles: Vec<WorkloadHandle>, cat: &mut dyn CacheController) -> Self {
        let total_ways = cat.capabilities().cbm_len;
        SharedCachePolicy {
            tracker: MetricsTracker::new(handles),
            total_ways,
            full_cbm: u64::from(Cbm::full(total_ways).0),
        }
    }
}

impl CachePolicy for SharedCachePolicy {
    fn name(&self) -> &'static str {
        "shared"
    }

    fn tick(
        &mut self,
        snapshots: &[CounterSnapshot],
        _cat: &mut dyn CacheController,
    ) -> Result<Vec<DomainReport>, ResctrlError> {
        let ways = vec![self.total_ways; snapshots.len()];
        let cbms = vec![Some(self.full_cbm); snapshots.len()];
        Ok(self.tracker.reports(snapshots, &ways, &cbms))
    }
}

/// Static CAT partitioning: each workload is pinned to its reserved ways
/// forever (the paper's "static partition" configuration).
pub struct StaticCatPolicy {
    tracker: MetricsTracker,
    ways: Vec<u32>,
    /// The partitions programmed at construction, per domain.
    masks: Vec<Option<u64>>,
}

impl StaticCatPolicy {
    /// Programs the reserved, non-overlapping partitions once.
    pub fn new(
        handles: Vec<WorkloadHandle>,
        cat: &mut dyn CacheController,
    ) -> Result<Self, ResctrlError> {
        let caps: CatCapabilities = cat.capabilities();
        let counts: Vec<u32> = handles.iter().map(|h| h.reserved_ways).collect();
        let layout = LayoutPlanner::new(caps.cbm_len).layout(&counts)?;
        for (i, handle) in handles.iter().enumerate() {
            let cos = CosId((i + 1) as u8);
            let cbm: Cbm = layout[i];
            cat.program_cos(cos, cbm)?;
            for &core in &handle.cores {
                cat.assign_core(core, cos)?;
            }
        }
        let masks = layout.iter().map(|c| Some(u64::from(c.0))).collect();
        Ok(StaticCatPolicy {
            tracker: MetricsTracker::new(handles),
            ways: counts,
            masks,
        })
    }
}

impl CachePolicy for StaticCatPolicy {
    fn name(&self) -> &'static str {
        "static-cat"
    }

    fn tick(
        &mut self,
        snapshots: &[CounterSnapshot],
        _cat: &mut dyn CacheController,
    ) -> Result<Vec<DomainReport>, ResctrlError> {
        let ways = self.ways.clone();
        let masks = self.masks.clone();
        Ok(self.tracker.reports(snapshots, &ways, &masks))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resctrl::InMemoryController;

    fn handles() -> Vec<WorkloadHandle> {
        vec![
            WorkloadHandle::new("a", vec![0, 1], 3),
            WorkloadHandle::new("b", vec![2, 3], 5),
        ]
    }

    fn snapshot(ins: u64, cyc: u64) -> CounterSnapshot {
        CounterSnapshot {
            l1_ref: ins / 3,
            llc_ref: 10,
            llc_miss: 5,
            ret_ins: ins,
            cycles: cyc,
        }
    }

    #[test]
    fn static_policy_programs_reserved_partitions() {
        let mut cat = InMemoryController::new(CatCapabilities::with_ways(20), 4);
        let mut p = StaticCatPolicy::new(handles(), &mut cat).unwrap();
        assert_eq!(cat.cos_mask(CosId(1)).unwrap().ways(), 3);
        assert_eq!(cat.cos_mask(CosId(2)).unwrap().ways(), 5);
        assert!(!cat.has_overlapping_active_masks());
        let r = p
            .tick(&[snapshot(100, 200), snapshot(300, 300)], &mut cat)
            .unwrap();
        assert_eq!(r[0].ways, 3);
        assert_eq!(r[1].ways, 5);
        assert!((r[1].ipc - 1.0).abs() < 1e-9);
        assert_eq!(p.name(), "static-cat");
    }

    #[test]
    fn static_policy_never_reprograms() {
        let mut cat = InMemoryController::new(CatCapabilities::with_ways(20), 4);
        let mut p = StaticCatPolicy::new(handles(), &mut cat).unwrap();
        let log_len = cat.log.len();
        for _ in 0..5 {
            p.tick(&[snapshot(100, 100), snapshot(100, 100)], &mut cat)
                .unwrap();
        }
        assert_eq!(cat.log.len(), log_len, "static policy must not mutate CAT");
    }

    #[test]
    fn shared_policy_reports_full_ways_and_never_programs() {
        let mut cat = InMemoryController::new(CatCapabilities::with_ways(20), 4);
        let mut p = SharedCachePolicy::new(handles(), &mut cat);
        let r = p
            .tick(&[snapshot(100, 100), snapshot(100, 100)], &mut cat)
            .unwrap();
        assert_eq!(r[0].ways, 20);
        assert!(cat.log.is_empty());
        assert_eq!(p.name(), "shared");
    }

    #[test]
    fn normalized_ipc_tracks_first_active_interval() {
        let mut cat = InMemoryController::new(CatCapabilities::with_ways(20), 4);
        let mut p = SharedCachePolicy::new(handles(), &mut cat);
        p.tick(&[snapshot(100, 200), snapshot(0, 0)], &mut cat)
            .unwrap();
        // Second interval: double the IPC of the first.
        let r = p
            .tick(
                &[
                    snapshot(100, 200).merged_with(&snapshot(100, 100)),
                    snapshot(0, 0),
                ],
                &mut cat,
            )
            .unwrap();
        assert!((r[0].norm_ipc.unwrap() - 2.0).abs() < 1e-9);
    }
}
