//! LFOC-style workload clustering onto shared COS (arXiv 2402.07578).
//!
//! dCat assigns one class of service per workload, which caps a host at
//! `num_closids - 1` tenants (15 on the paper's machines). A fleet host
//! packs far more. LFOC's answer — reproduced here in its structural
//! essentials — is to **cluster** workloads with similar cache behavior
//! onto a shared COS:
//!
//! * workloads that cannot profit from LLC capacity (idle cores, and
//!   streaming/thrashing patterns whose miss rate stays near 1.0 no
//!   matter the allocation) are fenced into one small *insensitive*
//!   bucket so they stop polluting everyone else — the same insight as
//!   dCat's `Streaming` class, applied fleet-wide;
//! * cache-sensitive workloads are sorted by their smoothed miss rate
//!   and split into quantile clusters; each cluster gets one COS sized
//!   by its aggregate miss pressure.
//!
//! The number of programmed COS is therefore bounded by
//! [`LfocConfig::max_clusters`] regardless of tenant count. Within a
//! cluster, tenants share the partition unpartitioned (LFOC accepts
//! intra-cluster interference between look-alikes in exchange for
//! isolation between clusters).
//!
//! Everything is deterministic: features are smoothed with a fixed-weight
//! EWMA, ordering ties break on domain index, and way apportionment is
//! integer largest-remainder — no RNG, no wall clock, no hash iteration.

use perf_events::{CounterSnapshot, IntervalMetrics};
use resctrl::{CacheController, Cbm, CosId, LayoutPlanner, ResctrlError};

use crate::baselines::MetricsTracker;
use crate::controller::{DomainReport, WorkloadHandle};
use crate::policy::CachePolicy;
use crate::state::WorkloadClass;

/// Tuning knobs for [`LfocPolicy`].
#[derive(Debug, Clone, Copy)]
pub struct LfocConfig {
    /// Upper bound on simultaneously programmed clusters (each cluster
    /// occupies one COS). Clamped to the hardware's `num_closids - 1`.
    pub max_clusters: u32,
    /// Way floor for every cluster (CAT forbids empty masks).
    pub min_ways: u32,
    /// Re-cluster every this many ticks; between reclusterings the
    /// assignment is stable so tenants keep warm partitions.
    pub recluster_ticks: u64,
    /// Weight of the newest observation in the feature EWMA (0..=1).
    pub smoothing: f64,
    /// `llc_ref / instruction` below which a domain is considered
    /// cache-insensitive (idle or compute-bound).
    pub idle_intensity: f64,
    /// Smoothed miss rate above which a domain is treated as
    /// streaming/thrashing (no allocation will help it).
    pub streaming_miss_rate: f64,
}

impl Default for LfocConfig {
    fn default() -> Self {
        LfocConfig {
            max_clusters: 4,
            min_ways: 1,
            recluster_ticks: 4,
            smoothing: 0.5,
            idle_intensity: 1e-3,
            streaming_miss_rate: 0.9,
        }
    }
}

/// Smoothed per-domain behavior signature.
#[derive(Debug, Clone, Copy, Default)]
struct Feature {
    /// EWMA of the interval LLC miss rate.
    miss_rate: f64,
    /// EWMA of LLC references per instruction.
    intensity: f64,
    /// Whether any active interval has been observed yet.
    warm: bool,
}

/// The insensitive bucket's cluster id; sensitive clusters follow.
const INSENSITIVE: usize = 0;

/// LFOC-style clustering policy behind [`CachePolicy`].
pub struct LfocPolicy {
    cfg: LfocConfig,
    tracker: MetricsTracker,
    features: Vec<Feature>,
    /// Cluster id per domain (0 = insensitive bucket).
    cluster_of: Vec<usize>,
    /// Ways granted to each cluster (index = cluster id).
    cluster_ways: Vec<u32>,
    /// Last programmed mask per cluster, for stable relayouts.
    cluster_masks: Vec<Option<Cbm>>,
    cbm_len: u32,
    ticks: u64,
}

impl LfocPolicy {
    /// Creates the policy and programs the initial single-cluster layout
    /// (everyone shares the full cache until features warm up).
    pub fn new(
        handles: Vec<WorkloadHandle>,
        cat: &mut dyn CacheController,
        mut cfg: LfocConfig,
    ) -> Result<Self, ResctrlError> {
        let caps = cat.capabilities();
        let hw_clusters = caps.num_closids.saturating_sub(1).max(1);
        cfg.max_clusters = cfg.max_clusters.clamp(1, hw_clusters);
        cfg.min_ways = cfg.min_ways.max(caps.min_cbm_bits).max(1);
        cfg.recluster_ticks = cfg.recluster_ticks.max(1);
        let n = handles.len();
        let mut policy = LfocPolicy {
            cfg,
            tracker: MetricsTracker::new(handles),
            features: vec![Feature::default(); n],
            cluster_of: vec![INSENSITIVE; n],
            cluster_ways: vec![caps.cbm_len],
            cluster_masks: Vec::new(),
            cbm_len: caps.cbm_len,
            ticks: 0,
        };
        policy.program(cat)?;
        Ok(policy)
    }

    /// Folds one interval into the smoothed features.
    fn update_features(&mut self, metrics: &[IntervalMetrics]) {
        let w = self.cfg.smoothing.clamp(0.0, 1.0);
        for (f, m) in self.features.iter_mut().zip(metrics) {
            if m.instructions == 0 {
                // Idle interval: decay intensity toward zero, keep the
                // miss-rate estimate (no evidence either way).
                f.intensity *= 1.0 - w;
                continue;
            }
            let intensity = m.llc_ref as f64 / m.instructions as f64;
            if f.warm {
                f.miss_rate = (1.0 - w) * f.miss_rate + w * m.llc_miss_rate;
                f.intensity = (1.0 - w) * f.intensity + w * intensity;
            } else {
                f.miss_rate = m.llc_miss_rate;
                f.intensity = intensity;
                f.warm = true;
            }
        }
    }

    /// Recomputes the cluster assignment and per-cluster way grants.
    fn recluster(&mut self) {
        let n = self.features.len();
        // Split sensitive vs insensitive.
        let mut sensitive: Vec<usize> = Vec::with_capacity(n);
        for (i, f) in self.features.iter().enumerate() {
            let insensitive = !f.warm
                || f.intensity < self.cfg.idle_intensity
                || f.miss_rate > self.cfg.streaming_miss_rate;
            if insensitive {
                self.cluster_of[i] = INSENSITIVE;
            } else {
                sensitive.push(i);
            }
        }
        // Quantile-cluster the sensitive set by smoothed miss rate;
        // ties break on domain index so the split is total-ordered.
        sensitive.sort_by(|&a, &b| {
            self.features[a]
                .miss_rate
                .total_cmp(&self.features[b].miss_rate)
                .then(a.cmp(&b))
        });
        let groups = (self.cfg.max_clusters as usize)
            .saturating_sub(1)
            .min(sensitive.len());
        if groups == 0 {
            // A one-COS budget cannot separate anyone.
            for &i in &sensitive {
                self.cluster_of[i] = INSENSITIVE;
            }
        }
        for (rank, &i) in sensitive.iter().enumerate() {
            if groups == 0 {
                break;
            }
            // rank * groups / len is a balanced quantile split.
            let g = rank * groups / sensitive.len();
            self.cluster_of[i] = 1 + g.min(groups - 1);
        }
        let clusters = 1 + groups;
        // Weight each sensitive cluster by its aggregate miss pressure;
        // the insensitive bucket is pinned to the floor.
        let mut weights = vec![0u64; clusters];
        let mut members = vec![0u64; clusters];
        for i in 0..n {
            let c = self.cluster_of[i];
            if let (Some(w), Some(m)) = (weights.get_mut(c), members.get_mut(c)) {
                let f = &self.features[i];
                // 100 base + up to 1000 of miss pressure, integerized so
                // apportionment stays exact.
                *w += 100 + (f.miss_rate.clamp(0.0, 1.0) * 1000.0) as u64;
                *m += 1;
            }
        }
        self.cluster_ways = apportion_ways(self.cbm_len, self.cfg.min_ways, &weights, &members);
    }

    /// Programs one COS per non-empty cluster and reassigns cores.
    fn program(&mut self, cat: &mut dyn CacheController) -> Result<(), ResctrlError> {
        let clusters = self.cluster_ways.len();
        // Compact to non-empty clusters (layout forbids zero counts).
        let mut occupied: Vec<usize> = Vec::with_capacity(clusters);
        for c in 0..clusters {
            if self.cluster_of.contains(&c) || (c == INSENSITIVE && clusters == 1) {
                occupied.push(c);
            }
        }
        if occupied.is_empty() {
            return Ok(());
        }
        let counts: Vec<u32> = occupied
            .iter()
            .map(|&c| self.cluster_ways.get(c).copied().unwrap_or(1).max(1))
            .collect();
        self.cluster_masks
            .resize(clusters.max(self.cluster_masks.len()), None);
        let previous: Vec<Option<Cbm>> = occupied
            .iter()
            .map(|&c| self.cluster_masks.get(c).copied().flatten())
            .collect();
        let layout = LayoutPlanner::new(self.cbm_len).layout_stable(&counts, &previous)?;
        for (j, &c) in occupied.iter().enumerate() {
            let cos = CosId((j + 1) as u8);
            let cbm = layout
                .get(j)
                .copied()
                .unwrap_or_else(|| Cbm::full(self.cbm_len));
            cat.program_cos(cos, cbm)?;
            if let Some(slot) = self.cluster_masks.get_mut(c) {
                *slot = Some(cbm);
            }
            for (i, handle) in self.tracker.handles().iter().enumerate() {
                if self.cluster_of.get(i).copied() == Some(c) {
                    for &core in &handle.cores {
                        cat.assign_core(core, cos)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// The report class for domain `i` under the current clustering.
    fn class_of(&self, i: usize) -> WorkloadClass {
        let f = match self.features.get(i) {
            Some(f) => f,
            None => return WorkloadClass::Unknown,
        };
        if !f.warm {
            return WorkloadClass::Unknown;
        }
        if self.cluster_of.get(i).copied() == Some(INSENSITIVE) {
            return if f.miss_rate > self.cfg.streaming_miss_rate
                && f.intensity >= self.cfg.idle_intensity
            {
                WorkloadClass::Streaming
            } else {
                WorkloadClass::Donor
            };
        }
        let top = self.cluster_ways.len().saturating_sub(1);
        if self.cluster_of.get(i).copied() == Some(top) && top > INSENSITIVE {
            WorkloadClass::Receiver
        } else {
            WorkloadClass::Keeper
        }
    }
}

/// Integer largest-remainder apportionment of `total` ways.
///
/// The insensitive bucket (index 0) is pinned to `floor` when occupied;
/// every other occupied cluster receives at least `floor` and the rest
/// proportionally to its weight. Deterministic: remainders tie-break on
/// cluster index.
fn apportion_ways(total: u32, floor: u32, weights: &[u64], members: &[u64]) -> Vec<u32> {
    let clusters = weights.len();
    let mut ways = vec![0u32; clusters];
    let mut occupied: Vec<usize> = Vec::with_capacity(clusters);
    for c in 0..clusters {
        if members.get(c).copied().unwrap_or(0) > 0 {
            occupied.push(c);
        }
    }
    if occupied.is_empty() {
        if let Some(w) = ways.first_mut() {
            *w = total;
        }
        return ways;
    }
    let mut remaining = total;
    // Floors first (insensitive bucket stays at its floor).
    for &c in &occupied {
        let grant = floor.min(remaining);
        if let Some(w) = ways.get_mut(c) {
            *w = grant;
        }
        remaining -= grant;
    }
    let mut sensitive: Vec<usize> = Vec::with_capacity(occupied.len());
    for &c in &occupied {
        if c != 0 {
            sensitive.push(c);
        }
    }
    let weight_sum: u64 = sensitive
        .iter()
        .map(|&c| weights.get(c).copied().unwrap_or(0))
        .sum();
    if weight_sum == 0 || sensitive.is_empty() {
        // Nothing sensitive: hand the remainder to the first cluster.
        if let Some(&c) = occupied.first() {
            if let Some(w) = ways.get_mut(c) {
                *w += remaining;
            }
        }
        return ways;
    }
    // Proportional grant with largest-remainder repair.
    let mut granted = 0u32;
    let mut remainders: Vec<(u64, usize)> = Vec::with_capacity(sensitive.len());
    for &c in &sensitive {
        let w = weights.get(c).copied().unwrap_or(0);
        let exact = u64::from(remaining) * w;
        let share = (exact.checked_div(weight_sum).unwrap_or(0)) as u32;
        if let Some(slot) = ways.get_mut(c) {
            *slot += share;
        }
        granted += share;
        remainders.push((exact.checked_rem(weight_sum).unwrap_or(0), c));
    }
    // Largest remainder first; ties on lower cluster index.
    remainders.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut leftover = remaining - granted;
    for &(_, c) in remainders.iter().cycle().take(remainders.len() * 2) {
        if leftover == 0 {
            break;
        }
        if let Some(w) = ways.get_mut(c) {
            *w += 1;
            leftover -= 1;
        }
    }
    // Any residue (degenerate weights) lands on the last sensitive cluster.
    if leftover > 0 {
        if let Some(&c) = sensitive.last() {
            if let Some(w) = ways.get_mut(c) {
                *w += leftover;
            }
        }
    }
    ways
}

impl CachePolicy for LfocPolicy {
    fn name(&self) -> &'static str {
        "lfoc"
    }

    fn tick(
        &mut self,
        snapshots: &[CounterSnapshot],
        cat: &mut dyn CacheController,
    ) -> Result<Vec<DomainReport>, ResctrlError> {
        let metrics = self.tracker.advance(snapshots);
        self.update_features(&metrics);
        self.ticks += 1;
        if self.ticks.is_multiple_of(self.cfg.recluster_ticks) {
            self.recluster();
            self.program(cat)?;
        }
        let reports = metrics
            .iter()
            .enumerate()
            .map(|(i, m)| {
                let cluster = self.cluster_of.get(i).copied().unwrap_or(INSENSITIVE);
                let ways = self
                    .cluster_ways
                    .get(cluster)
                    .copied()
                    .unwrap_or(self.cbm_len);
                let cbm = self
                    .cluster_masks
                    .get(cluster)
                    .copied()
                    .flatten()
                    .map(|c| u64::from(c.0));
                self.tracker.report(i, m, ways, self.class_of(i), cbm)
            })
            .collect();
        Ok(reports)
    }

    fn frame_ext(&self) -> dcat_obs::PolicyExt {
        let clusters = self.cluster_ways.len();
        let mut occupied = 0u32;
        for c in INSENSITIVE + 1..clusters {
            if self.cluster_of.contains(&c) {
                occupied += 1;
            }
        }
        let insensitive = self
            .cluster_of
            .iter()
            .filter(|&&c| c == INSENSITIVE)
            .count() as u32;
        dcat_obs::PolicyExt {
            // One COS per occupied cluster, plus the insensitive bucket
            // when anyone is fenced into it.
            cos: occupied + u32::from(insensitive > 0),
            lfoc: Some(dcat_obs::LfocExt {
                clusters: occupied,
                insensitive,
            }),
            memshare: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resctrl::{CatCapabilities, InMemoryController};

    fn snapshot(ins: u64, cyc: u64, llc_ref: u64, llc_miss: u64) -> CounterSnapshot {
        CounterSnapshot {
            l1_ref: ins / 3,
            llc_ref,
            llc_miss,
            ret_ins: ins,
            cycles: cyc,
        }
    }

    fn accumulate(ticks: u64, per: CounterSnapshot) -> CounterSnapshot {
        CounterSnapshot {
            l1_ref: per.l1_ref * ticks,
            llc_ref: per.llc_ref * ticks,
            llc_miss: per.llc_miss * ticks,
            ret_ins: per.ret_ins * ticks,
            cycles: per.cycles * ticks,
        }
    }

    /// 24 tenants — way beyond the 15-COS budget — in three behavior
    /// archetypes. The policy must fit them into `max_clusters` COS.
    #[test]
    fn clusters_many_tenants_into_few_cos() {
        let n = 24u32;
        let mut cat = InMemoryController::new(CatCapabilities::with_ways(20), n);
        let handles: Vec<WorkloadHandle> = (0..n)
            .map(|i| WorkloadHandle::new(format!("t{i}"), vec![i], 1))
            .collect();
        let mut p = LfocPolicy::new(handles, &mut cat, LfocConfig::default()).unwrap();
        let per_tick: Vec<CounterSnapshot> = (0..n)
            .map(|i| match i % 3 {
                0 => snapshot(1000, 1000, 300, 30),  // cache-friendly
                1 => snapshot(1000, 2000, 400, 380), // streaming
                _ => snapshot(1000, 1500, 300, 150), // miss-heavy
            })
            .collect();
        for t in 1..=8u64 {
            let snaps: Vec<CounterSnapshot> = per_tick.iter().map(|s| accumulate(t, *s)).collect();
            let r = p.tick(&snaps, &mut cat).unwrap();
            assert_eq!(r.len(), n as usize);
        }
        assert!(!cat.has_overlapping_active_masks());
        let distinct: std::collections::BTreeSet<u8> = (0..n)
            .filter_map(|c| cat.core_cos(c).ok().map(|cos| cos.0))
            .collect();
        assert!(
            distinct.len() <= LfocConfig::default().max_clusters as usize,
            "expected ≤ {} clusters, got {distinct:?}",
            LfocConfig::default().max_clusters
        );
        assert!(distinct.len() >= 2, "behaviors must separate: {distinct:?}");
        assert_eq!(p.name(), "lfoc");
    }

    #[test]
    fn streaming_tenants_are_fenced_into_the_insensitive_bucket() {
        let mut cat = InMemoryController::new(CatCapabilities::with_ways(20), 4);
        let handles = vec![
            WorkloadHandle::new("friendly", vec![0], 1),
            WorkloadHandle::new("stream", vec![1], 1),
        ];
        let mut p = LfocPolicy::new(handles, &mut cat, LfocConfig::default()).unwrap();
        let mut last = Vec::new();
        for t in 1..=8u64 {
            let snaps = vec![
                accumulate(t, snapshot(1000, 1000, 300, 15)),
                accumulate(t, snapshot(1000, 3000, 500, 490)),
            ];
            last = p.tick(&snaps, &mut cat).unwrap();
        }
        assert_eq!(last[1].class, WorkloadClass::Streaming);
        assert!(
            last[1].ways <= last[0].ways,
            "streaming bucket must not out-size the sensitive cluster: {last:?}"
        );
    }

    #[test]
    fn reclustering_is_deterministic() {
        let run = || {
            let n = 12u32;
            let mut cat = InMemoryController::new(CatCapabilities::with_ways(20), n);
            let handles: Vec<WorkloadHandle> = (0..n)
                .map(|i| WorkloadHandle::new(format!("t{i}"), vec![i], 1))
                .collect();
            let mut p = LfocPolicy::new(handles, &mut cat, LfocConfig::default()).unwrap();
            let mut out = Vec::new();
            for t in 1..=6u64 {
                let snaps: Vec<CounterSnapshot> = (0..n)
                    .map(|i| {
                        accumulate(
                            t,
                            snapshot(
                                1000 + u64::from(i),
                                1500,
                                200 + 20 * u64::from(i),
                                10 * u64::from(i),
                            ),
                        )
                    })
                    .collect();
                for r in p.tick(&snaps, &mut cat).unwrap() {
                    out.push(format!("{}:{}:{:?}", r.name, r.ways, r.class));
                }
            }
            (out, cat.log.clone())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn apportionment_is_exact_and_respects_floors() {
        let ways = apportion_ways(20, 1, &[100, 300, 700], &[2, 3, 3]);
        assert_eq!(ways.iter().sum::<u32>(), 20);
        assert!(ways.iter().all(|&w| w >= 1));
        assert_eq!(ways[0], 1, "insensitive bucket pinned to the floor");
        assert!(ways[2] > ways[1], "weightier cluster gets more ways");
    }
}
