//! Per-phase performance tables (paper Section 3.5, Table 1).
//!
//! For each workload phase dCat records the normalized IPC (relative to
//! the baseline IPC at the reserved allocation) observed at each way
//! count. The table serves three purposes:
//!
//! * when the same phase recurs, the workload is granted its **preferred**
//!   allocation immediately instead of re-discovering it one way per
//!   interval (Figure 12),
//! * the **max-performance** allocation policy searches the tables of all
//!   workloads for the way split maximizing total normalized IPC, and
//! * it documents whether growth ever helped, feeding the
//!   Unknown → Receiver/Streaming determination.

/// Widens a way count for indexing. `u32 -> usize` cannot truncate on any
/// supported target; routing through `try_from` keeps the conversion
/// explicit and the cast-safety lint clean. The fallback is unreachable
/// and merely keeps the tick path panic-free.
fn widen(ways: u32) -> usize {
    usize::try_from(ways).unwrap_or(usize::MAX)
}

/// Narrows a table index back to a way count. Table sizes are bounded by
/// `max_ways: u32`, so the conversion cannot fail for in-table indices;
/// the saturating fallback keeps the tick path panic-free regardless.
fn narrow(index: usize) -> u32 {
    u32::try_from(index).unwrap_or(u32::MAX)
}

/// Normalized-IPC-per-way-count table for one workload phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PerformanceTable {
    /// `entries[w]` = normalized IPC at `w` ways (index 0 unused).
    entries: Vec<Option<f64>>,
}

impl PerformanceTable {
    /// Creates an empty table for caches of up to `max_ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `max_ways` is zero.
    pub fn new(max_ways: u32) -> Self {
        assert!(max_ways >= 1, "table needs at least one way");
        PerformanceTable {
            entries: vec![None; widen(max_ways) + 1],
        }
    }

    /// Maximum way count the table covers.
    pub fn max_ways(&self) -> u32 {
        narrow(self.entries.len() - 1)
    }

    /// Records an observation of `norm_ipc` at `ways`, blending with any
    /// existing entry (equal-weight EWMA smooths interval noise).
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero or beyond the table.
    pub fn record(&mut self, ways: u32, norm_ipc: f64) {
        assert!(
            ways >= 1 && ways <= self.max_ways(),
            "ways {ways} out of table range"
        );
        let slot = &mut self.entries[widen(ways)];
        *slot = Some(match *slot {
            None => norm_ipc,
            Some(prev) => 0.5 * prev + 0.5 * norm_ipc,
        });
    }

    /// The recorded normalized IPC at `ways`, if any.
    pub fn get(&self, ways: u32) -> Option<f64> {
        if ways == 0 || ways > self.max_ways() {
            return None;
        }
        self.entries[widen(ways)]
    }

    /// Whether no observation has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.entries.iter().all(Option::is_none)
    }

    /// Number of recorded entries.
    pub fn len(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }

    /// The *preferred* allocation: the smallest way count whose normalized
    /// IPC is within `tolerance` of the table's maximum (the paper's
    /// Table 1 marks 6 ways preferred because 7 and 8 add nothing).
    pub fn preferred_ways(&self, tolerance: f64) -> Option<u32> {
        let max = self
            .entries
            .iter()
            .flatten()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        // Still at the seed: the table has no finite entries.
        if max.is_infinite() {
            return None;
        }
        self.entries
            .iter()
            .enumerate()
            .find(|(_, e)| matches!(e, Some(v) if *v >= max - tolerance))
            .map(|(w, _)| narrow(w))
    }

    /// Iterates over `(ways, norm_ipc)` pairs in ascending way order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(w, e)| e.map(|v| (narrow(w), v)))
    }

    /// Clears every entry (phase invalidation).
    pub fn clear(&mut self) {
        for e in &mut self.entries {
            *e = None;
        }
    }
}

/// Finds the way split across workloads maximizing the sum of normalized
/// IPCs, subject to a total way budget (paper Section 3.5:
/// `Max(Σ norm_IPC_i)` s.t. `Σ ways_i ≤ m`).
///
/// Each workload contributes its table's recorded `(ways, value)` options;
/// workloads must take exactly one option. Returns the chosen way count per
/// workload, or `None` when some workload has an empty table or no
/// combination fits the budget.
pub fn max_performance_split(tables: &[&PerformanceTable], total_ways: u32) -> Option<Vec<u32>> {
    let total = widen(total_ways);
    // dp[w] = best total value using exactly the workloads processed so
    // far and w ways; choice[i][w] = ways given to workload i in that
    // optimum.
    let mut dp = vec![f64::NEG_INFINITY; total + 1];
    if let Some(base) = dp.first_mut() {
        *base = 0.0;
    }
    let mut choices: Vec<Vec<u32>> = Vec::with_capacity(tables.len());
    for table in tables {
        if table.is_empty() {
            return None;
        }
        let mut next = vec![f64::NEG_INFINITY; total + 1];
        let mut choice = vec![0u32; total + 1];
        for (ways, value) in table.iter() {
            let w = widen(ways);
            for used in w..=total {
                let Some(&prev) = dp.get(used - w) else {
                    continue;
                };
                // Unreachable budget point (still the -inf seed).
                if prev.is_infinite() {
                    continue;
                }
                let cand = prev + value;
                if cand > next[used] {
                    next[used] = cand;
                    choice[used] = ways;
                }
            }
        }
        dp = next;
        choices.push(choice);
    }
    // Best budget point.
    let (mut used, best) = dp.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1))?;
    if best.is_infinite() {
        return None;
    }
    // Walk back through the per-workload choices.
    let mut result = vec![0u32; tables.len()];
    for i in (0..tables.len()).rev() {
        let ways = choices[i][used];
        result[i] = ways;
        used -= widen(ways);
    }
    Some(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the paper's Table 1.
    fn paper_table() -> PerformanceTable {
        let mut t = PerformanceTable::new(8);
        t.record(2, 0.9);
        t.record(3, 1.0); // baseline
        t.record(4, 1.15);
        t.record(5, 1.25);
        t.record(6, 1.3); // preferred
        t.record(7, 1.3);
        t.record(8, 1.3);
        t
    }

    #[test]
    fn record_and_get() {
        let mut t = PerformanceTable::new(4);
        assert!(t.is_empty());
        t.record(2, 1.1);
        assert_eq!(t.get(2), Some(1.1));
        assert_eq!(t.get(3), None);
        assert_eq!(t.get(0), None);
        assert_eq!(t.get(9), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn repeated_records_blend() {
        let mut t = PerformanceTable::new(4);
        t.record(2, 1.0);
        t.record(2, 2.0);
        assert_eq!(t.get(2), Some(1.5));
    }

    #[test]
    fn preferred_ways_matches_paper_table_1() {
        // Table 1 marks 6 ways as preferred: the smallest allocation
        // reaching the maximum normalized IPC (1.3).
        assert_eq!(paper_table().preferred_ways(1e-9), Some(6));
    }

    #[test]
    fn preferred_ways_with_tolerance() {
        // With a 5% tolerance, 5 ways (1.25) is close enough to 1.3.
        assert_eq!(paper_table().preferred_ways(0.05), Some(5));
        assert_eq!(PerformanceTable::new(8).preferred_ways(0.0), None);
    }

    #[test]
    fn clear_empties() {
        let mut t = paper_table();
        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    fn split_reproduces_paper_example() {
        // Paper Section 3.5: A = (3:1.05) (4:1.08) (5:1.12),
        // B = (3:1.1) (4:1.2) (5:1.25), both with (2:1.0); budget 8 ways
        // after C reclaims 2. Optimal: A=3, B=5 (sum 2.3).
        let mut a = PerformanceTable::new(10);
        a.record(2, 1.0);
        a.record(3, 1.05);
        a.record(4, 1.08);
        a.record(5, 1.12);
        let mut b = PerformanceTable::new(10);
        b.record(2, 1.0);
        b.record(3, 1.1);
        b.record(4, 1.2);
        b.record(5, 1.25);
        let split = max_performance_split(&[&a, &b], 8).unwrap();
        assert_eq!(split, vec![3, 5]);
    }

    #[test]
    fn split_respects_budget() {
        let mut a = PerformanceTable::new(10);
        a.record(4, 2.0);
        a.record(2, 1.0);
        let mut b = PerformanceTable::new(10);
        b.record(4, 2.0);
        b.record(2, 1.0);
        // Budget 6: cannot give both 4; best is 4+2 (value 3.0).
        let split = max_performance_split(&[&a, &b], 6).unwrap();
        assert_eq!(split.iter().sum::<u32>(), 6);
        assert!(split.contains(&4) && split.contains(&2));
    }

    #[test]
    fn split_fails_on_empty_table_or_impossible_budget() {
        let empty = PerformanceTable::new(10);
        let mut full = PerformanceTable::new(10);
        full.record(5, 1.0);
        assert!(max_performance_split(&[&empty, &full], 10).is_none());
        // Both need 5 ways but the budget is 4.
        assert!(max_performance_split(&[&full, &full], 4).is_none());
    }

    #[test]
    #[should_panic(expected = "out of table range")]
    fn record_beyond_range_panics() {
        let mut t = PerformanceTable::new(4);
        t.record(5, 1.0);
    }
}
