//! The paper's Figure 6 transition table, as data.
//!
//! Each interval the categorizer maps a workload's current
//! [`WorkloadClass`] and an [`Observation`] (the telemetry bucket the
//! interval fell into) to the next class. The edges live in [`FIGURE6`],
//! an ordered rule list — first match wins — so the state machine can be
//! audited row by row against the paper, enumerated exhaustively by the
//! table-driven classifier test, and explored by the `dcat-verify` model
//! checker, all without duplicating the logic.
//!
//! [`DcatController::tick`](crate::DcatController::tick) consumes the same
//! table through [`decide`]: the table *is* the classifier, not a copy of
//! it.

use crate::state::WorkloadClass;

/// Where the interval's IPC landed relative to the improvement threshold,
/// for a workload whose allocation change is being judged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImprovementSignal {
    /// Judged: IPC improved by more than `ipc_imp_thr`.
    Improved,
    /// Judged: IPC did not improve meaningfully.
    Stalled,
    /// No judgement this interval (no allocation change to evaluate).
    Unjudged,
}

/// One interval's telemetry, bucketed against the config thresholds —
/// the abstraction level at which Figure 6 is drawn.
#[derive(Debug, Clone, Copy)]
pub struct Observation {
    /// LLC references per instruction at or below `llc_ref_per_instr_thr`:
    /// the workload does not use the LLC.
    pub low_llc_use: bool,
    /// Miss rate below `donor_miss_rate_thr`: whatever is cached suffices.
    pub negligible_misses: bool,
    /// Miss rate above `llc_miss_rate_thr`: the workload is starved (or
    /// streaming).
    pub high_misses: bool,
    /// Judgement of the last allocation change, if one was due.
    pub improvement: ImprovementSignal,
    /// The active phase's table recorded a meaningful gain at some size.
    pub ever_improved: bool,
    /// A growth step was observed to yield no improvement this phase.
    pub saw_no_improvement: bool,
    /// Growth has nowhere to go: the streaming cap was reached, or the
    /// allocator denied the last grow request.
    pub at_growth_limit: bool,
    /// The allocator denied the last grow request specifically.
    pub grow_denied: bool,
    /// Pinned at the reserved allocation after a Streaming misverdict.
    pub capped: bool,
    /// A previous growth probe stalled at exactly the current size.
    pub stalled_here: bool,
}

/// One edge of Figure 6: `from` (or any class when `None`) moves to `to`
/// when `when` holds. Rules are tried in order; the first match wins.
pub struct Rule {
    /// Source class; `None` matches every class.
    pub from: Option<WorkloadClass>,
    /// Guard over the interval's observation.
    pub when: fn(&Observation) -> bool,
    /// Destination class.
    pub to: WorkloadClass,
    /// Whether taking this edge records a stall at the current size
    /// (Keeper will not re-probe there this phase).
    pub records_stall: bool,
    /// The Figure-6 edge this row encodes.
    pub edge: &'static str,
}

/// The Figure 6 state machine. Reclaim and Streaming resolve uncondition-
/// ally before the telemetry guards; every class ends with a catch-all
/// self-edge, so the table is total.
pub const FIGURE6: &[Rule] = &[
    Rule {
        from: Some(WorkloadClass::Reclaim),
        when: |_| true,
        to: WorkloadClass::Keeper,
        records_stall: false,
        edge: "Reclaim -> Keeper: baseline re-measured at the reserved size",
    },
    Rule {
        from: Some(WorkloadClass::Streaming),
        when: |_| true,
        to: WorkloadClass::Streaming,
        records_stall: false,
        edge: "Streaming -> Streaming: the verdict is sticky within a phase",
    },
    Rule {
        from: None,
        when: |o| o.low_llc_use,
        to: WorkloadClass::Donor,
        records_stall: false,
        edge: "any -> Donor (fast): the workload is not using the LLC",
    },
    Rule {
        from: Some(WorkloadClass::Keeper),
        when: |o| o.negligible_misses,
        to: WorkloadClass::Donor,
        records_stall: false,
        edge: "Keeper -> Donor (gradual): whatever is cached suffices",
    },
    Rule {
        from: Some(WorkloadClass::Donor),
        when: |o| o.negligible_misses && !o.high_misses,
        to: WorkloadClass::Donor,
        records_stall: false,
        edge: "Donor -> Donor: misses still negligible, keep donating",
    },
    Rule {
        from: Some(WorkloadClass::Donor),
        when: |_| true,
        to: WorkloadClass::Keeper,
        records_stall: false,
        edge: "Donor -> Keeper: donated too far (misses no longer negligible)",
    },
    Rule {
        from: Some(WorkloadClass::Keeper),
        when: |o| o.high_misses && !o.capped && !o.stalled_here,
        to: WorkloadClass::Unknown,
        records_stall: false,
        edge: "Keeper -> Unknown: missing hard, probe whether cache helps",
    },
    Rule {
        from: Some(WorkloadClass::Keeper),
        when: |_| true,
        to: WorkloadClass::Keeper,
        records_stall: false,
        edge: "Keeper -> Keeper: neither donating nor starved",
    },
    Rule {
        from: Some(WorkloadClass::Unknown),
        when: |o| o.improvement == ImprovementSignal::Improved,
        to: WorkloadClass::Receiver,
        records_stall: false,
        edge: "Unknown -> Receiver: the added way paid off",
    },
    Rule {
        from: Some(WorkloadClass::Unknown),
        when: |o| !o.ever_improved && o.saw_no_improvement && o.at_growth_limit,
        to: WorkloadClass::Streaming,
        records_stall: false,
        edge: "Unknown -> Streaming: grew to the limit, never any payoff",
    },
    Rule {
        from: Some(WorkloadClass::Unknown),
        when: |o| o.improvement == ImprovementSignal::Stalled && o.ever_improved,
        to: WorkloadClass::Keeper,
        records_stall: true,
        edge: "Unknown -> Keeper: benefited earlier but stalled at this size",
    },
    Rule {
        from: Some(WorkloadClass::Unknown),
        when: |o| o.improvement == ImprovementSignal::Unjudged && o.grow_denied,
        to: WorkloadClass::Keeper,
        records_stall: true,
        edge: "Unknown -> Keeper: pool exhausted, probe cannot proceed",
    },
    Rule {
        from: Some(WorkloadClass::Unknown),
        when: |_| true,
        to: WorkloadClass::Unknown,
        records_stall: false,
        edge: "Unknown -> Unknown: verdict still open, keep probing",
    },
    Rule {
        from: Some(WorkloadClass::Receiver),
        when: |o| o.improvement == ImprovementSignal::Stalled,
        to: WorkloadClass::Keeper,
        records_stall: true,
        edge: "Receiver -> Keeper: the latest way yielded no improvement",
    },
    Rule {
        from: Some(WorkloadClass::Receiver),
        when: |o| !o.high_misses,
        to: WorkloadClass::Keeper,
        records_stall: false,
        edge: "Receiver -> Keeper: misses subsided, growth is done",
    },
    Rule {
        from: Some(WorkloadClass::Receiver),
        when: |_| true,
        to: WorkloadClass::Receiver,
        records_stall: false,
        edge: "Receiver -> Receiver: still starved, still improving",
    },
];

/// Resolves the Figure 6 edge for `current` under `obs`.
///
/// # Panics
///
/// Panics if no rule matches — impossible while every class retains its
/// catch-all row (the exhaustive classifier test enumerates totality).
pub fn decide(current: WorkloadClass, obs: &Observation) -> &'static Rule {
    FIGURE6
        .iter()
        .find(|r| (r.from.is_none() || r.from == Some(current)) && (r.when)(obs))
        // lint: allow(DL013, the exhaustive classifier test enumerates totality over every class; a non-total table is a build defect worth dying on, not a runtime condition to degrade)
        .unwrap_or_else(|| panic!("Figure 6 table not total for {current:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL_CLASSES: [WorkloadClass; 6] = [
        WorkloadClass::Keeper,
        WorkloadClass::Donor,
        WorkloadClass::Receiver,
        WorkloadClass::Streaming,
        WorkloadClass::Unknown,
        WorkloadClass::Reclaim,
    ];

    fn all_observations() -> Vec<Observation> {
        let mut out = Vec::new();
        for low in [false, true] {
            for negligible in [false, true] {
                for high in [false, true] {
                    for imp in [
                        ImprovementSignal::Improved,
                        ImprovementSignal::Stalled,
                        ImprovementSignal::Unjudged,
                    ] {
                        for ever in [false, true] {
                            for saw in [false, true] {
                                for denied in [false, true] {
                                    for limit in [denied, true] {
                                        for capped in [false, true] {
                                            for stalled in [false, true] {
                                                out.push(Observation {
                                                    low_llc_use: low,
                                                    negligible_misses: negligible,
                                                    high_misses: high,
                                                    improvement: imp,
                                                    ever_improved: ever,
                                                    saw_no_improvement: saw,
                                                    at_growth_limit: limit,
                                                    grow_denied: denied,
                                                    capped,
                                                    stalled_here: stalled,
                                                });
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }

    #[test]
    fn table_is_total_over_the_whole_lattice() {
        for class in ALL_CLASSES {
            for obs in all_observations() {
                // decide() panics on a gap; reaching here is the assertion.
                let rule = decide(class, &obs);
                assert!(rule.from.is_none() || rule.from == Some(class));
            }
        }
    }

    /// An independent transcription of Figure 6, written as a plain match
    /// (the shape the paper draws) rather than a rule list. The exhaustive
    /// test below holds the two formulations to each other over every
    /// (state x telemetry-bucket) cell.
    fn figure6_spec(current: WorkloadClass, o: &Observation) -> WorkloadClass {
        use ImprovementSignal::*;
        use WorkloadClass::*;
        match current {
            Reclaim => Keeper,
            Streaming => Streaming,
            _ if o.low_llc_use => Donor,
            Keeper if o.negligible_misses => Donor,
            Donor => {
                if o.high_misses {
                    Keeper
                } else if o.negligible_misses {
                    Donor
                } else {
                    Keeper
                }
            }
            Keeper => {
                if o.high_misses && !o.capped && !o.stalled_here {
                    Unknown
                } else {
                    Keeper
                }
            }
            Unknown => match o.improvement {
                Improved => Receiver,
                _ if !o.ever_improved && o.saw_no_improvement && o.at_growth_limit => Streaming,
                Stalled if o.ever_improved => Keeper,
                // A denied probe with nothing judged resolves to Keeper:
                // the verdict cannot be reached until capacity frees up,
                // and the stall record retries it when that happens.
                Unjudged if o.grow_denied => Keeper,
                _ => Unknown,
            },
            Receiver => {
                if !o.high_misses || o.improvement == Stalled {
                    Keeper
                } else {
                    Receiver
                }
            }
        }
    }

    #[test]
    fn classifier_matches_figure6_for_every_cell() {
        let mut cells = 0usize;
        for class in ALL_CLASSES {
            for obs in all_observations() {
                let rule = decide(class, &obs);
                assert_eq!(
                    rule.to,
                    figure6_spec(class, &obs),
                    "divergence at {class:?} with {obs:?} (rule: {})",
                    rule.edge
                );
                cells += 1;
            }
        }
        assert!(cells >= 6 * 384, "lattice under-enumerated: {cells} cells");
    }

    #[test]
    fn terminal_and_priority_edges_match_the_paper() {
        let idle = Observation {
            low_llc_use: true,
            negligible_misses: true,
            high_misses: false,
            improvement: ImprovementSignal::Unjudged,
            ever_improved: false,
            saw_no_improvement: false,
            at_growth_limit: false,
            grow_denied: false,
            capped: false,
            stalled_here: false,
        };
        // Reclaim and Streaming resolve before any telemetry guard.
        assert_eq!(
            decide(WorkloadClass::Reclaim, &idle).to,
            WorkloadClass::Keeper
        );
        assert_eq!(
            decide(WorkloadClass::Streaming, &idle).to,
            WorkloadClass::Streaming
        );
        // Everyone else with no LLC use donates fast.
        for class in [
            WorkloadClass::Keeper,
            WorkloadClass::Donor,
            WorkloadClass::Receiver,
            WorkloadClass::Unknown,
        ] {
            assert_eq!(decide(class, &idle).to, WorkloadClass::Donor);
        }
    }
}
