//! Controller configuration: the paper's tunable thresholds.

/// How the free pool is distributed among cache-hungry workloads
/// (paper Section 3.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocationPolicy {
    /// Distribute available ways evenly across beneficiaries, ignoring the
    /// magnitude of their IPC improvements.
    MaxFairness,
    /// Search the per-phase performance tables for the way split maximizing
    /// the sum of normalized IPCs.
    MaxPerformance,
}

/// dCat's thresholds and knobs. Defaults are the values the paper selects
/// in its sensitivity study (Section 5.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DcatConfig {
    /// LLC references per instruction below which a workload is considered
    /// to not use the LLC at all (the paper's `llc_ref_thr`) and donates
    /// down to the minimum allocation.
    pub llc_ref_per_instr_thr: f64,
    /// LLC miss rate above which a workload may benefit from more cache
    /// (`llc_miss_rate_thr`). The paper picks 3%.
    pub llc_miss_rate_thr: f64,
    /// Relative IPC improvement per added way required to keep Receiver
    /// status (`ipc_imp_thr`). The paper picks 5%.
    pub ipc_imp_thr: f64,
    /// LLC miss rate below which a cache-using workload is treated as
    /// having "no cache misses" (the paper's Figure-6 Keeper → Donor edge)
    /// and donates one way per interval. Must be well below
    /// `llc_miss_rate_thr` or a workload sitting at its preferred size
    /// would oscillate between donating and re-growing.
    pub donor_miss_rate_thr: f64,
    /// Relative change in memory accesses per instruction that signals a
    /// phase change. The paper uses 10%.
    pub phase_change_thr: f64,
    /// An Unknown workload whose allocation reaches
    /// `streaming_multiplier * reserved_ways` without IPC improvement is
    /// declared Streaming. The paper uses 3.
    pub streaming_multiplier: u32,
    /// Minimum ways any workload keeps (Intel x86 cannot allocate zero).
    pub min_ways: u32,
    /// Relative IPC shortfall versus the baseline that triggers a reclaim
    /// back to the reserved allocation (enforces the baseline guarantee
    /// when donation shrank a workload too far).
    pub baseline_margin: f64,
    /// Intervals to wait after a ways change before judging its effect
    /// (cache refill is not instantaneous; judging too early would
    /// misclassify receivers as streaming).
    pub settle_intervals: u32,
    /// Quantization step for the phase signature when keying stored
    /// performance tables (recurring-phase detection).
    pub phase_bucket_quantum: f64,
    /// Free-pool distribution policy.
    pub policy: AllocationPolicy,
    /// Whether per-phase performance tables are archived and restored so a
    /// recurring phase jumps straight to its preferred allocation
    /// (paper Figure 12). Disable to ablate the feature.
    pub enable_perf_table_reuse: bool,
}

impl Default for DcatConfig {
    fn default() -> Self {
        DcatConfig {
            llc_ref_per_instr_thr: 0.001,
            llc_miss_rate_thr: 0.03,
            ipc_imp_thr: 0.05,
            donor_miss_rate_thr: 0.005,
            phase_change_thr: 0.10,
            streaming_multiplier: 3,
            min_ways: 1,
            baseline_margin: 0.05,
            settle_intervals: 2,
            phase_bucket_quantum: 0.02,
            policy: AllocationPolicy::MaxFairness,
            enable_perf_table_reuse: true,
        }
    }
}

impl DcatConfig {
    /// The default configuration with the max-performance policy.
    pub fn max_performance() -> Self {
        DcatConfig {
            policy: AllocationPolicy::MaxPerformance,
            ..DcatConfig::default()
        }
    }

    /// Validates threshold sanity.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..1.0).contains(&self.llc_miss_rate_thr) {
            return Err("llc_miss_rate_thr must be in [0,1)".to_string());
        }
        if self.ipc_imp_thr < 0.0 {
            return Err("ipc_imp_thr must be non-negative".to_string());
        }
        if self.donor_miss_rate_thr >= self.llc_miss_rate_thr {
            return Err("donor_miss_rate_thr must be below llc_miss_rate_thr".to_string());
        }
        if self.phase_change_thr <= 0.0 {
            return Err("phase_change_thr must be positive".to_string());
        }
        if self.streaming_multiplier == 0 {
            return Err("streaming_multiplier must be at least 1".to_string());
        }
        if self.min_ways == 0 {
            return Err("min_ways must be at least 1 (Intel CAT)".to_string());
        }
        if self.settle_intervals == 0 {
            return Err("settle_intervals must be at least 1".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_choices() {
        let c = DcatConfig::default();
        assert!((c.llc_miss_rate_thr - 0.03).abs() < 1e-9, "paper picks 3%");
        assert!((c.ipc_imp_thr - 0.05).abs() < 1e-9, "paper picks 5%");
        assert!((c.phase_change_thr - 0.10).abs() < 1e-9, "paper uses 10%");
        assert_eq!(c.streaming_multiplier, 3, "paper uses 3x baseline");
        assert_eq!(c.min_ways, 1, "Intel x86 does not allow 0 ways");
        assert!(c.donor_miss_rate_thr < c.llc_miss_rate_thr);
        assert_eq!(c.policy, AllocationPolicy::MaxFairness);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn max_performance_preset() {
        assert_eq!(
            DcatConfig::max_performance().policy,
            AllocationPolicy::MaxPerformance
        );
    }

    #[test]
    fn validation_catches_bad_values() {
        let bad = [
            DcatConfig {
                min_ways: 0,
                ..DcatConfig::default()
            },
            DcatConfig {
                llc_miss_rate_thr: 1.5,
                ..DcatConfig::default()
            },
            DcatConfig {
                streaming_multiplier: 0,
                ..DcatConfig::default()
            },
            DcatConfig {
                settle_intervals: 0,
                ..DcatConfig::default()
            },
            DcatConfig {
                phase_change_thr: 0.0,
                ..DcatConfig::default()
            },
            DcatConfig {
                ipc_imp_thr: -0.1,
                ..DcatConfig::default()
            },
            DcatConfig {
                donor_miss_rate_thr: 0.5,
                ..DcatConfig::default()
            },
        ];
        for cfg in bad {
            assert!(cfg.validate().is_err(), "accepted invalid {cfg:?}");
        }
    }
}
