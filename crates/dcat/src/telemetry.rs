//! Telemetry acquisition for the daemon: file reads, lossy parsing, and
//! the fault-injecting wrapper.
//!
//! The daemon never touches the filesystem directly (the DL005 lint
//! pass enforces it): it pulls raw CSV text through a [`TelemetryFeed`],
//! retries transient failures through [`resctrl::retry::with_retries`],
//! and parses with [`parse_telemetry_lossy`], which drops malformed rows
//! individually instead of rejecting the whole sample — a sampler caught
//! mid-write corrupts one line, not the host.
//!
//! [`FaultyTelemetry`] wraps any feed with the telemetry half of a
//! [`FaultPlan`]: scheduled read errors, truncation, stale (repeated)
//! samples, and narrowed counters that wrap. Production runs use an
//! empty plan, which injects nothing.

use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use perf_events::CounterSnapshot;
use resctrl::fault::{Fault, FaultPlan};
use resctrl::ResctrlError;

/// A producer of raw telemetry text, one read per daemon tick.
pub trait TelemetryFeed {
    /// Reads the current sample. `tick` is the daemon's 1-based tick,
    /// used by fault-injecting implementations to follow their schedule.
    fn read(&mut self, tick: u64) -> Result<String, ResctrlError>;
}

/// Reads the telemetry CSV an external sampler refreshes.
#[derive(Debug, Clone)]
pub struct FileTelemetry {
    path: PathBuf,
}

impl FileTelemetry {
    /// A feed over `path`.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        FileTelemetry { path: path.into() }
    }

    /// The file being read.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl TelemetryFeed for FileTelemetry {
    fn read(&mut self, _tick: u64) -> Result<String, ResctrlError> {
        std::fs::read_to_string(&self.path).map_err(ResctrlError::Io)
    }
}

/// One dropped telemetry row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowIssue {
    /// 1-based line number.
    pub line: usize,
    /// The domain name, when the row got far enough to reveal one.
    pub domain: Option<String>,
    /// What was wrong.
    pub message: String,
}

/// Parses the telemetry CSV, dropping malformed rows individually.
///
/// Returns the good rows plus one [`RowIssue`] per dropped row. A
/// duplicate domain keeps the *first* occurrence (the second is the
/// suspect one under append-style corruption). Contrast with
/// [`crate::daemon::parse_telemetry`], which rejects the whole sample —
/// right for one-shot tools, wrong for a loop that must survive a
/// sampler caught mid-write.
pub fn parse_telemetry_lossy(text: &str) -> (BTreeMap<String, CounterSnapshot>, Vec<RowIssue>) {
    let mut out = BTreeMap::new();
    let mut issues = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        let domain = fields
            .first()
            .filter(|name| !name.is_empty())
            .map(|name| name.to_string());
        let &[_, l1_ref, llc_ref, llc_miss, ret_ins, cycles] = fields.as_slice() else {
            issues.push(RowIssue {
                line: lineno + 1,
                domain,
                message: format!("expected 6 fields, got {}", fields.len()),
            });
            continue;
        };
        // The first malformed field wins the row's issue report; the
        // parsed value of a bad field is irrelevant (the row is dropped).
        let mut bad = None;
        let mut parse = |raw: &str, what: &str| -> u64 {
            match raw.parse() {
                Ok(v) => v,
                Err(e) => {
                    if bad.is_none() {
                        bad = Some(format!("bad {what} {raw:?}: {e}"));
                    }
                    0
                }
            }
        };
        let snap = CounterSnapshot {
            l1_ref: parse(l1_ref, "l1_ref"),
            llc_ref: parse(llc_ref, "llc_ref"),
            llc_miss: parse(llc_miss, "llc_miss"),
            ret_ins: parse(ret_ins, "ret_ins"),
            cycles: parse(cycles, "cycles"),
        };
        if let Some(message) = bad {
            issues.push(RowIssue {
                line: lineno + 1,
                domain,
                message,
            });
            continue;
        }
        let Some(name) = domain else {
            issues.push(RowIssue {
                line: lineno + 1,
                domain: None,
                message: "empty domain name".to_string(),
            });
            continue;
        };
        match out.entry(name) {
            Entry::Occupied(slot) => issues.push(RowIssue {
                line: lineno + 1,
                domain: Some(slot.key().clone()),
                message: "duplicate domain row".to_string(),
            }),
            Entry::Vacant(slot) => {
                slot.insert(snap);
            }
        }
    }
    (out, issues)
}

/// A [`TelemetryFeed`] wrapper that injects the telemetry half of a
/// [`FaultPlan`].
///
/// Per scheduled fault kind:
///
/// * [`Fault::TelemetryRead`] — every read this tick fails with an
///   injected I/O error (retries exhaust, the tick degrades);
/// * [`Fault::TelemetryReadOnce`] — only the first read this tick fails
///   (one retry absorbs it);
/// * [`Fault::TelemetryTruncated`] — the text is cut off mid-row;
/// * [`Fault::TelemetryStale`] — the previous successful sample is
///   served again;
/// * [`Fault::CounterWrap`] — from its first scheduled tick onward,
///   numeric fields are reported modulo `2^wrap_width_bits`, as a
///   narrow hardware counter would report them.
#[derive(Debug)]
pub struct FaultyTelemetry<S> {
    inner: S,
    plan: FaultPlan,
    last_good: Option<String>,
    calls_this_tick: u32,
    tick: u64,
    injected: Vec<(u64, Fault)>,
}

impl<S: TelemetryFeed> FaultyTelemetry<S> {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: S, plan: FaultPlan) -> Self {
        FaultyTelemetry {
            inner,
            plan,
            last_good: None,
            calls_this_tick: 0,
            tick: 0,
            injected: Vec::new(),
        }
    }

    /// Every fault actually injected, as `(tick, fault)` pairs.
    pub fn injected(&self) -> &[(u64, Fault)] {
        &self.injected
    }

    fn narrow_counters(&self, text: &str) -> String {
        let modulus = 2u64.pow(self.plan.wrap_width_bits());
        let mut out = String::with_capacity(text.len());
        for line in text.lines() {
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                out.push_str(line);
            } else {
                let narrowed: Vec<String> = line
                    .split(',')
                    .enumerate()
                    .map(|(k, field)| {
                        if k == 0 {
                            return field.to_string();
                        }
                        match field.trim().parse::<u64>() {
                            Ok(v) => (v % modulus).to_string(),
                            Err(_) => field.to_string(),
                        }
                    })
                    .collect();
                out.push_str(&narrowed.join(","));
            }
            out.push('\n');
        }
        out
    }
}

impl<S: TelemetryFeed> TelemetryFeed for FaultyTelemetry<S> {
    fn read(&mut self, tick: u64) -> Result<String, ResctrlError> {
        if tick != self.tick {
            self.tick = tick;
            self.calls_this_tick = 0;
        }
        let first_call = self.calls_this_tick == 0;
        self.calls_this_tick += 1;

        if self.plan.contains(tick, Fault::TelemetryRead) {
            self.injected.push((tick, Fault::TelemetryRead));
            return Err(ResctrlError::Io(std::io::Error::other(format!(
                "injected telemetry_read fault at tick {tick}"
            ))));
        }
        if first_call && self.plan.contains(tick, Fault::TelemetryReadOnce) {
            self.injected.push((tick, Fault::TelemetryReadOnce));
            return Err(ResctrlError::Io(std::io::Error::other(format!(
                "injected telemetry_read_once fault at tick {tick}"
            ))));
        }

        let mut text = self.inner.read(tick)?;
        if self.plan.wrap_active_at(tick) {
            if self.plan.contains(tick, Fault::CounterWrap) {
                self.injected.push((tick, Fault::CounterWrap));
            }
            text = self.narrow_counters(&text);
        }
        if self.plan.contains(tick, Fault::TelemetryStale) {
            if let Some(stale) = &self.last_good {
                self.injected.push((tick, Fault::TelemetryStale));
                return Ok(stale.clone());
            }
        }
        if self.plan.contains(tick, Fault::TelemetryTruncated) {
            self.injected.push((tick, Fault::TelemetryTruncated));
            let mut cut = text.len() * 3 / 5;
            while cut > 0 && !text.is_char_boundary(cut) {
                cut -= 1;
            }
            // lint: allow(DL009, cut is walked back to a char boundary above; a slice at a boundary <= len cannot panic)
            return Ok(text[..cut].to_string());
        }
        self.last_good = Some(text.clone());
        Ok(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An in-memory feed scripted per tick.
    struct Scripted(Vec<String>);

    impl TelemetryFeed for Scripted {
        fn read(&mut self, tick: u64) -> Result<String, ResctrlError> {
            Ok(self.0[(tick - 1) as usize].clone())
        }
    }

    #[test]
    fn lossy_parse_keeps_good_rows_and_reports_bad_ones() {
        let text = "# header\na,1,2,3,4,5\nb,1,2\nc,x,2,3,4,5\na,9,9,9,9,9\nd,1,2,3,4,5\n";
        let (rows, issues) = parse_telemetry_lossy(text);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows["a"].l1_ref, 1, "first duplicate occurrence wins");
        assert_eq!(rows["d"].cycles, 5);
        assert_eq!(issues.len(), 3);
        assert_eq!(issues[0].domain.as_deref(), Some("b"));
        assert!(issues[0].message.contains("expected 6 fields"));
        assert!(issues[1].message.contains("bad l1_ref"));
        assert_eq!(issues[2].message, "duplicate domain row");
    }

    #[test]
    fn truncated_text_loses_the_tail_row_only() {
        let text = "a,1,2,3,4,5\nb,10,20,30,40,50\n";
        let feed = Scripted(vec![text.to_string()]);
        let plan = FaultPlan::scripted([(1, Fault::TelemetryTruncated)]);
        let mut faulty = FaultyTelemetry::new(feed, plan);
        let got = faulty.read(1).unwrap();
        assert!(got.len() < text.len());
        let (rows, issues) = parse_telemetry_lossy(&got);
        assert!(rows.contains_key("a"), "leading rows survive truncation");
        assert!(!rows.contains_key("b"));
        assert_eq!(issues.len(), 1);
        assert_eq!(faulty.injected(), &[(1, Fault::TelemetryTruncated)]);
    }

    #[test]
    fn stale_fault_replays_the_previous_sample() {
        let feed = Scripted(vec!["a,1,1,1,1,1\n".into(), "a,2,2,2,2,2\n".into()]);
        let plan = FaultPlan::scripted([(2, Fault::TelemetryStale)]);
        let mut faulty = FaultyTelemetry::new(feed, plan);
        let first = faulty.read(1).unwrap();
        let second = faulty.read(2).unwrap();
        assert_eq!(first, second);
    }

    #[test]
    fn wrap_fault_narrows_totals_stickily() {
        let feed = Scripted(vec![
            "a,1,1,1,1,100\n".into(),
            "a,1,1,1,1,300\n".into(),
            "a,1,1,1,1,600\n".into(),
        ]);
        let plan = FaultPlan::scripted([(2, Fault::CounterWrap)]).with_wrap_width(8);
        let mut faulty = FaultyTelemetry::new(feed, plan);
        assert!(faulty.read(1).unwrap().contains(",100"));
        assert!(faulty.read(2).unwrap().contains(",44"), "300 mod 256");
        assert!(
            faulty.read(3).unwrap().contains(",88"),
            "600 mod 256 — sticky"
        );
    }

    #[test]
    fn read_once_fault_fails_only_the_first_attempt() {
        let feed = Scripted(vec!["a,1,1,1,1,1\n".into()]);
        let plan = FaultPlan::scripted([(1, Fault::TelemetryReadOnce)]);
        let mut faulty = FaultyTelemetry::new(feed, plan);
        assert!(faulty.read(1).is_err());
        assert!(faulty.read(1).is_ok(), "the retry within the tick succeeds");
    }
}
