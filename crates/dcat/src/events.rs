//! Structured per-tick events from the daemon's recovery paths.
//!
//! The daemon used to have exactly two observable behaviors: produce
//! reports, or die. Everything in between — a retried read, a held
//! allocation, a quarantined domain — was invisible. [`Event`] makes
//! that middle ground explicit: every tick of
//! [`crate::daemon::run_daemon_with`] carries the events it generated
//! through the observer hook, each rendering as one stable
//! `key=value`-style log line for operators and as a typed value for
//! tests, which assert the log records every injected fault.

use std::fmt;

/// Why a tick was degraded (allocations held, no controller decision).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeReason {
    /// Telemetry could not be read after all retries.
    Telemetry,
    /// A resctrl write failed after all retries, mid-tick.
    Resctrl,
}

impl fmt::Display for DegradeReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DegradeReason::Telemetry => write!(f, "telemetry"),
            DegradeReason::Resctrl => write!(f, "resctrl"),
        }
    }
}

/// One structured observation from the daemon loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A telemetry read failed transiently and was retried.
    TelemetryRetried {
        /// 1-based attempt that failed.
        attempt: u32,
        /// Rendered error.
        error: String,
    },
    /// Telemetry reads exhausted their retries this tick.
    TelemetryExhausted {
        /// Total attempts made.
        attempts: u32,
        /// Rendered final error.
        error: String,
    },
    /// A telemetry row could not be parsed and was dropped.
    RowMalformed {
        /// Domain name, when the row got far enough to reveal one.
        domain: Option<String>,
        /// 1-based line number in the telemetry file.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// A resctrl write failed transiently and was retried.
    ResctrlRetried {
        /// Which operation (e.g. `program_cos`).
        op: &'static str,
        /// 1-based attempt that failed.
        attempt: u32,
        /// Rendered error.
        error: String,
    },
    /// A resctrl write exhausted its retries.
    ResctrlExhausted {
        /// Which operation.
        op: &'static str,
        /// Total attempts made.
        attempts: u32,
        /// Rendered final error.
        error: String,
    },
    /// The tick was degraded: the previous allocation is held and no
    /// controller decision was taken.
    DegradedTick {
        /// Which failure surface caused it.
        reason: DegradeReason,
    },
    /// A counter wrapped and the interval was reconstructed.
    CounterWrapped {
        /// The affected domain.
        domain: String,
    },
    /// A counter jumped backwards implausibly (reset); the domain's
    /// interval was skipped and its totals resynced.
    CounterReset {
        /// The affected domain.
        domain: String,
    },
    /// A sample repeated the previous totals while the domain was
    /// active; the interval was skipped as stale.
    StaleSample {
        /// The affected domain.
        domain: String,
    },
    /// A configured domain has not appeared in any telemetry sample.
    DomainSilent {
        /// The affected domain.
        domain: String,
    },
    /// A domain's telemetry stayed missing or malformed for the
    /// configured number of consecutive ticks; its allocation is frozen
    /// and further complaints are suppressed until it recovers.
    DomainQuarantined {
        /// The affected domain.
        domain: String,
        /// Consecutive bad ticks that triggered the quarantine.
        after_ticks: u32,
    },
    /// A quarantined domain produced a good sample again.
    DomainRecovered {
        /// The affected domain.
        domain: String,
    },
    /// The post-tick invariant audit failed (held state is still
    /// serving; this event is the alarm).
    InvariantViolation {
        /// The violation, rendered.
        message: String,
    },
}

impl Event {
    /// Stable event name (the `event=` field of the log line).
    pub fn name(&self) -> &'static str {
        match self {
            Event::TelemetryRetried { .. } => "telemetry_retried",
            Event::TelemetryExhausted { .. } => "telemetry_exhausted",
            Event::RowMalformed { .. } => "row_malformed",
            Event::ResctrlRetried { .. } => "resctrl_retried",
            Event::ResctrlExhausted { .. } => "resctrl_exhausted",
            Event::DegradedTick { .. } => "degraded_tick",
            Event::CounterWrapped { .. } => "counter_wrapped",
            Event::CounterReset { .. } => "counter_reset",
            Event::StaleSample { .. } => "stale_sample",
            Event::DomainSilent { .. } => "domain_silent",
            Event::DomainQuarantined { .. } => "domain_quarantined",
            Event::DomainRecovered { .. } => "domain_recovered",
            Event::InvariantViolation { .. } => "invariant_violation",
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "event={}", self.name())?;
        match self {
            Event::TelemetryRetried { attempt, error } => {
                write!(f, " attempt={attempt} error={error:?}")
            }
            Event::TelemetryExhausted { attempts, error } => {
                write!(f, " attempts={attempts} error={error:?}")
            }
            Event::RowMalformed {
                domain,
                line,
                message,
            } => {
                if let Some(d) = domain {
                    write!(f, " domain={d}")?;
                }
                write!(f, " line={line} message={message:?}")
            }
            Event::ResctrlRetried { op, attempt, error } => {
                write!(f, " op={op} attempt={attempt} error={error:?}")
            }
            Event::ResctrlExhausted {
                op,
                attempts,
                error,
            } => write!(f, " op={op} attempts={attempts} error={error:?}"),
            Event::DegradedTick { reason } => write!(f, " reason={reason}"),
            Event::CounterWrapped { domain }
            | Event::CounterReset { domain }
            | Event::StaleSample { domain }
            | Event::DomainSilent { domain }
            | Event::DomainRecovered { domain } => write!(f, " domain={domain}"),
            Event::DomainQuarantined {
                domain,
                after_ticks,
            } => write!(f, " domain={domain} after_ticks={after_ticks}"),
            Event::InvariantViolation { message } => write!(f, " message={message:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_render_as_stable_log_lines() {
        let e = Event::DegradedTick {
            reason: DegradeReason::Telemetry,
        };
        assert_eq!(e.to_string(), "event=degraded_tick reason=telemetry");
        let e = Event::DomainQuarantined {
            domain: "vm3".into(),
            after_ticks: 5,
        };
        assert_eq!(
            e.to_string(),
            "event=domain_quarantined domain=vm3 after_ticks=5"
        );
        let e = Event::ResctrlRetried {
            op: "program_cos",
            attempt: 1,
            error: "EIO".into(),
        };
        assert_eq!(
            e.to_string(),
            "event=resctrl_retried op=program_cos attempt=1 error=\"EIO\""
        );
    }

    #[test]
    fn row_malformed_renders_with_and_without_a_domain() {
        let anon = Event::RowMalformed {
            domain: None,
            line: 4,
            message: "expected 6 fields".into(),
        };
        assert!(!anon.to_string().contains("domain="));
        let named = Event::RowMalformed {
            domain: Some("vm1".into()),
            line: 4,
            message: "bad l1_ref".into(),
        };
        assert!(named.to_string().contains("domain=vm1 line=4"));
    }
}
