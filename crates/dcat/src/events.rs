//! Structured per-tick events from the daemon's recovery paths.
//!
//! The daemon used to have exactly two observable behaviors: produce
//! reports, or die. Everything in between — a retried read, a held
//! allocation, a quarantined domain — was invisible. [`Event`] makes
//! that middle ground explicit: every tick of
//! [`crate::daemon::run_daemon_with`] carries the events it generated
//! through the observer hook, each rendering as one stable
//! `key=value`-style log line for operators and as a typed value for
//! tests, which assert the log records every injected fault.

use std::fmt;

/// Why a tick was degraded (allocations held, no controller decision).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeReason {
    /// Telemetry could not be read after all retries.
    Telemetry,
    /// A resctrl write failed after all retries, mid-tick.
    Resctrl,
}

impl fmt::Display for DegradeReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DegradeReason::Telemetry => write!(f, "telemetry"),
            DegradeReason::Resctrl => write!(f, "resctrl"),
        }
    }
}

/// One structured observation from the daemon loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A telemetry read failed transiently and was retried.
    TelemetryRetried {
        /// 1-based attempt that failed.
        attempt: u32,
        /// Rendered error.
        error: String,
    },
    /// Telemetry reads exhausted their retries this tick.
    TelemetryExhausted {
        /// Total attempts made.
        attempts: u32,
        /// Rendered final error.
        error: String,
    },
    /// A telemetry row could not be parsed and was dropped.
    RowMalformed {
        /// Domain name, when the row got far enough to reveal one.
        domain: Option<String>,
        /// 1-based line number in the telemetry file.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// A resctrl write failed transiently and was retried.
    ResctrlRetried {
        /// Which operation (e.g. `program_cos`).
        op: &'static str,
        /// 1-based attempt that failed.
        attempt: u32,
        /// Rendered error.
        error: String,
    },
    /// A resctrl write exhausted its retries.
    ResctrlExhausted {
        /// Which operation.
        op: &'static str,
        /// Total attempts made.
        attempts: u32,
        /// Rendered final error.
        error: String,
    },
    /// The tick was degraded: the previous allocation is held and no
    /// controller decision was taken.
    DegradedTick {
        /// Which failure surface caused it.
        reason: DegradeReason,
    },
    /// A counter wrapped and the interval was reconstructed.
    CounterWrapped {
        /// The affected domain.
        domain: String,
    },
    /// A counter jumped backwards implausibly (reset); the domain's
    /// interval was skipped and its totals resynced.
    CounterReset {
        /// The affected domain.
        domain: String,
    },
    /// A sample repeated the previous totals while the domain was
    /// active; the interval was skipped as stale.
    StaleSample {
        /// The affected domain.
        domain: String,
    },
    /// A configured domain has not appeared in any telemetry sample.
    DomainSilent {
        /// The affected domain.
        domain: String,
    },
    /// A domain's telemetry stayed missing or malformed for the
    /// configured number of consecutive ticks; its allocation is frozen
    /// and further complaints are suppressed until it recovers.
    DomainQuarantined {
        /// The affected domain.
        domain: String,
        /// Consecutive bad ticks that triggered the quarantine.
        after_ticks: u32,
    },
    /// A quarantined domain produced a good sample again.
    DomainRecovered {
        /// The affected domain.
        domain: String,
    },
    /// The post-tick invariant audit failed (held state is still
    /// serving; this event is the alarm).
    InvariantViolation {
        /// The violation, rendered.
        message: String,
    },
}

/// One rendered event field. [`FieldValue::Ident`] is for bare identifiers
/// (domain names, op names, reasons) that the log line prints unquoted;
/// [`FieldValue::Text`] is free-form text (error/message strings) that the
/// log line prints with `{:?}` quoting. Both render as JSON strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldValue {
    U64(u64),
    Ident(String),
    Text(String),
}

impl Event {
    /// Stable event name (the `event=` field of the log line).
    pub fn name(&self) -> &'static str {
        match self {
            Event::TelemetryRetried { .. } => "telemetry_retried",
            Event::TelemetryExhausted { .. } => "telemetry_exhausted",
            Event::RowMalformed { .. } => "row_malformed",
            Event::ResctrlRetried { .. } => "resctrl_retried",
            Event::ResctrlExhausted { .. } => "resctrl_exhausted",
            Event::DegradedTick { .. } => "degraded_tick",
            Event::CounterWrapped { .. } => "counter_wrapped",
            Event::CounterReset { .. } => "counter_reset",
            Event::StaleSample { .. } => "stale_sample",
            Event::DomainSilent { .. } => "domain_silent",
            Event::DomainQuarantined { .. } => "domain_quarantined",
            Event::DomainRecovered { .. } => "domain_recovered",
            Event::InvariantViolation { .. } => "invariant_violation",
        }
    }

    /// The event's fields in rendering order — the single source of truth
    /// behind both the `key=value` log line ([`fmt::Display`]) and the JSON
    /// object ([`Event::to_json`]).
    pub fn fields(&self) -> Vec<(&'static str, FieldValue)> {
        use FieldValue::{Ident, Text, U64};
        match self {
            Event::TelemetryRetried { attempt, error } => vec![
                ("attempt", U64(u64::from(*attempt))),
                ("error", Text(error.clone())),
            ],
            Event::TelemetryExhausted { attempts, error } => vec![
                ("attempts", U64(u64::from(*attempts))),
                ("error", Text(error.clone())),
            ],
            Event::RowMalformed {
                domain,
                line,
                message,
            } => {
                let mut out = Vec::new();
                if let Some(d) = domain {
                    out.push(("domain", Ident(d.clone())));
                }
                out.push(("line", U64(*line as u64)));
                out.push(("message", Text(message.clone())));
                out
            }
            Event::ResctrlRetried { op, attempt, error } => vec![
                ("op", Ident((*op).to_string())),
                ("attempt", U64(u64::from(*attempt))),
                ("error", Text(error.clone())),
            ],
            Event::ResctrlExhausted {
                op,
                attempts,
                error,
            } => vec![
                ("op", Ident((*op).to_string())),
                ("attempts", U64(u64::from(*attempts))),
                ("error", Text(error.clone())),
            ],
            Event::DegradedTick { reason } => vec![("reason", Ident(reason.to_string()))],
            Event::CounterWrapped { domain }
            | Event::CounterReset { domain }
            | Event::StaleSample { domain }
            | Event::DomainSilent { domain }
            | Event::DomainRecovered { domain } => vec![("domain", Ident(domain.clone()))],
            Event::DomainQuarantined {
                domain,
                after_ticks,
            } => vec![
                ("domain", Ident(domain.clone())),
                ("after_ticks", U64(u64::from(*after_ticks))),
            ],
            Event::InvariantViolation { message } => vec![("message", Text(message.clone()))],
        }
    }

    /// Render as a single-line JSON object with a stable shape:
    /// `{"event":"<name>", <fields in log-line order>}`. Shared by the
    /// flight recorder and anything else that wants events machine-readable.
    pub fn to_json(&self) -> String {
        let mut obj = dcat_obs::json::Obj::new().str_field("event", self.name());
        for (key, value) in self.fields() {
            obj = match value {
                FieldValue::U64(v) => obj.u64_field(key, v),
                FieldValue::Ident(s) | FieldValue::Text(s) => obj.str_field(key, &s),
            };
        }
        obj.finish()
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "event={}", self.name())?;
        for (key, value) in self.fields() {
            match value {
                FieldValue::U64(v) => write!(f, " {key}={v}")?,
                FieldValue::Ident(s) => write!(f, " {key}={s}")?,
                FieldValue::Text(s) => write!(f, " {key}={s:?}")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_render_as_stable_log_lines() {
        let e = Event::DegradedTick {
            reason: DegradeReason::Telemetry,
        };
        assert_eq!(e.to_string(), "event=degraded_tick reason=telemetry");
        let e = Event::DomainQuarantined {
            domain: "vm3".into(),
            after_ticks: 5,
        };
        assert_eq!(
            e.to_string(),
            "event=domain_quarantined domain=vm3 after_ticks=5"
        );
        let e = Event::ResctrlRetried {
            op: "program_cos",
            attempt: 1,
            error: "EIO".into(),
        };
        assert_eq!(
            e.to_string(),
            "event=resctrl_retried op=program_cos attempt=1 error=\"EIO\""
        );
    }

    #[test]
    fn json_rendering_round_trips_shape_for_every_variant() {
        use dcat_obs::json::{self, Value};
        let variants = vec![
            Event::TelemetryRetried {
                attempt: 2,
                error: "EAGAIN".into(),
            },
            Event::TelemetryExhausted {
                attempts: 3,
                error: "ENOENT".into(),
            },
            Event::RowMalformed {
                domain: Some("vm1".into()),
                line: 7,
                message: "bad ipc".into(),
            },
            Event::RowMalformed {
                domain: None,
                line: 9,
                message: "short row".into(),
            },
            Event::ResctrlRetried {
                op: "program_cos",
                attempt: 1,
                error: "EIO".into(),
            },
            Event::ResctrlExhausted {
                op: "assign_cos",
                attempts: 4,
                error: "EBUSY".into(),
            },
            Event::DegradedTick {
                reason: DegradeReason::Resctrl,
            },
            Event::CounterWrapped {
                domain: "vm0".into(),
            },
            Event::CounterReset {
                domain: "vm0".into(),
            },
            Event::StaleSample {
                domain: "vm2".into(),
            },
            Event::DomainSilent {
                domain: "vm3".into(),
            },
            Event::DomainQuarantined {
                domain: "vm3".into(),
                after_ticks: 5,
            },
            Event::DomainRecovered {
                domain: "vm3".into(),
            },
            Event::InvariantViolation {
                message: "cbm overlap".into(),
            },
        ];
        for e in variants {
            let parsed = json::parse(&e.to_json()).expect("event JSON parses");
            assert_eq!(
                parsed.get("event").and_then(Value::as_str),
                Some(e.name()),
                "event field carries the stable name"
            );
            // Every log-line field appears in the JSON object with a
            // matching value, in the same order after the leading name.
            match &parsed {
                Value::Obj(members) => {
                    let fields = e.fields();
                    assert_eq!(members.len(), fields.len() + 1);
                    for ((key, value), (jk, jv)) in fields.iter().zip(&members[1..]) {
                        assert_eq!(key, jk);
                        match value {
                            FieldValue::U64(v) => assert_eq!(jv.as_num(), Some(*v as f64)),
                            FieldValue::Ident(s) | FieldValue::Text(s) => {
                                assert_eq!(jv.as_str(), Some(s.as_str()));
                            }
                        }
                    }
                }
                other => panic!("expected object, got {other:?}"),
            }
        }
    }

    #[test]
    fn json_rendering_escapes_hostile_strings() {
        use dcat_obs::json::{self, Value};
        let e = Event::InvariantViolation {
            message: "quote \" backslash \\ newline \n tab \t done".into(),
        };
        let rendered = e.to_json();
        let parsed = json::parse(&rendered).expect("escaped JSON parses");
        assert_eq!(
            parsed.get("message").and_then(Value::as_str),
            Some("quote \" backslash \\ newline \n tab \t done")
        );
        // The rendered line itself must stay single-line.
        assert!(!rendered.contains('\n'));
    }

    #[test]
    fn display_and_json_agree_on_field_order() {
        let e = Event::DomainQuarantined {
            domain: "vm3".into(),
            after_ticks: 5,
        };
        assert_eq!(
            e.to_string(),
            "event=domain_quarantined domain=vm3 after_ticks=5"
        );
        assert_eq!(
            e.to_json(),
            "{\"event\":\"domain_quarantined\",\"domain\":\"vm3\",\"after_ticks\":5}"
        );
    }

    #[test]
    fn row_malformed_renders_with_and_without_a_domain() {
        let anon = Event::RowMalformed {
            domain: None,
            line: 4,
            message: "expected 6 fields".into(),
        };
        assert!(!anon.to_string().contains("domain="));
        let named = Event::RowMalformed {
            domain: Some("vm1".into()),
            line: 4,
            message: "bad l1_ref".into(),
        };
        assert!(named.to_string().contains("domain=vm1 line=4"));
    }
}
