//! The dCat daemon: the deployment form of the controller.
//!
//! The paper's prototype is "a C program [that] runs as a daemon in the
//! host OS", reading MSR counters and programming CAT once per interval.
//! This module is the Rust equivalent with the two hardware touchpoints
//! abstracted:
//!
//! * CAT is programmed through [`resctrl::FsBackend`] — point it at a real
//!   `/sys/fs/resctrl` mount on CAT hardware, or at a fixture tree for
//!   testing, and
//! * counters are read from a **telemetry file** that an external sampler
//!   (an MSR reader, a `perf` wrapper, or the simulator) refreshes; the
//!   format is one CSV line per domain:
//!
//! ```text
//! # name,l1_ref,llc_ref,llc_miss,ret_ins,cycles   (monotonic totals)
//! tenant-a,340000,120000,60000,1000000,20000000
//! tenant-b,20000,100,10,1000000,800000
//! ```
//!
//! The `dcatd` binary wraps [`run_daemon`] with command-line parsing.

use std::collections::HashMap;
use std::path::PathBuf;
use std::time::Duration;

use perf_events::CounterSnapshot;
use resctrl::{FsBackend, ResctrlError};

use crate::config::DcatConfig;
use crate::controller::{DcatController, DomainReport, WorkloadHandle};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Root of the resctrl tree (`/sys/fs/resctrl` on hardware).
    pub resctrl_root: PathBuf,
    /// Path of the telemetry CSV refreshed by the external sampler.
    pub telemetry_path: PathBuf,
    /// Managed workloads; names must match the telemetry file.
    pub domains: Vec<WorkloadHandle>,
    /// Controller thresholds.
    pub dcat: DcatConfig,
    /// Sampling interval (the paper uses 1 s).
    pub interval: Duration,
    /// Stop after this many ticks (`None` = run forever). Used by tests
    /// and by one-shot invocations.
    pub max_ticks: Option<u64>,
}

/// Parses the telemetry CSV into per-domain snapshots.
///
/// Blank lines and `#` comments are ignored. Returns an error naming the
/// offending line on any malformed row.
pub fn parse_telemetry(text: &str) -> Result<HashMap<String, CounterSnapshot>, String> {
    let mut out = HashMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() != 6 {
            return Err(format!(
                "line {}: expected 6 fields, got {}",
                lineno + 1,
                fields.len()
            ));
        }
        let parse = |s: &str, what: &str| -> Result<u64, String> {
            s.parse()
                .map_err(|e| format!("line {}: bad {what} {s:?}: {e}", lineno + 1))
        };
        let snap = CounterSnapshot {
            l1_ref: parse(fields[1], "l1_ref")?,
            llc_ref: parse(fields[2], "llc_ref")?,
            llc_miss: parse(fields[3], "llc_miss")?,
            ret_ins: parse(fields[4], "ret_ins")?,
            cycles: parse(fields[5], "cycles")?,
        };
        if out.insert(fields[0].to_string(), snap).is_some() {
            return Err(format!(
                "line {}: duplicate domain {:?}",
                lineno + 1,
                fields[0]
            ));
        }
    }
    Ok(out)
}

/// Parses a `;`-separated `name:cores:ways` domain spec list, e.g.
/// `"web:0-1:4;db:2-3,6:6"` (core lists use the cpus_list syntax, so the
/// domain separator is `;` rather than `,`).
pub fn parse_domains(spec: &str) -> Result<Vec<WorkloadHandle>, String> {
    let mut handles = Vec::new();
    for part in spec.split(';') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let pieces: Vec<&str> = part.split(':').collect();
        if pieces.len() != 3 {
            return Err(format!("domain spec {part:?}: expected name:cores:ways"));
        }
        let cores =
            resctrl::fs::parse_cpu_list(pieces[1]).map_err(|e| format!("domain {part:?}: {e}"))?;
        if cores.is_empty() {
            return Err(format!("domain {part:?}: empty core list"));
        }
        let ways: u32 = pieces[2]
            .parse()
            .map_err(|e| format!("domain {part:?}: bad ways: {e}"))?;
        handles.push(WorkloadHandle::new(pieces[0], cores, ways));
    }
    if handles.is_empty() {
        return Err("no domains specified".to_string());
    }
    Ok(handles)
}

/// Runs the daemon loop; returns the reports of the final tick.
///
/// Domains missing from a telemetry sample keep their previous totals (an
/// idle interval), so a slow sampler degrades gracefully.
pub fn run_daemon(cfg: &DaemonConfig) -> Result<Vec<DomainReport>, ResctrlError> {
    run_daemon_with(cfg, |_, _| {})
}

/// [`run_daemon`] with a per-tick observer.
///
/// `observe(tick, reports)` is called after every controller interval
/// (ticks count from 1), before the inter-tick sleep. Integration tests
/// use the hook to rewrite the telemetry file between ticks — playing the
/// role of the external sampler without a second thread — and to record
/// the class/ways trajectory; a monitoring wrapper could export the
/// reports from it.
pub fn run_daemon_with(
    cfg: &DaemonConfig,
    mut observe: impl FnMut(u64, &[DomainReport]),
) -> Result<Vec<DomainReport>, ResctrlError> {
    let mut cat = FsBackend::open(&cfg.resctrl_root)?;
    let mut controller = DcatController::new(cfg.dcat, cfg.domains.clone(), &mut cat)?;
    let mut last = vec![CounterSnapshot::default(); cfg.domains.len()];
    let mut final_reports = Vec::new();
    let mut tick = 0u64;
    loop {
        if let Some(max) = cfg.max_ticks {
            if tick >= max {
                break;
            }
        }
        tick += 1;
        let text = std::fs::read_to_string(&cfg.telemetry_path)?;
        let samples = parse_telemetry(&text).map_err(ResctrlError::Parse)?;
        for (i, handle) in cfg.domains.iter().enumerate() {
            if let Some(snap) = samples.get(&handle.name) {
                last[i] = *snap;
            }
        }
        final_reports = controller.tick(&last, &mut cat)?;
        observe(tick, &final_reports);
        if cfg.max_ticks.is_none() || tick < cfg.max_ticks.unwrap_or(0) {
            std::thread::sleep(cfg.interval);
        }
    }
    Ok(final_reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use resctrl::CatCapabilities;

    #[test]
    fn telemetry_parsing_happy_path() {
        let text = "# comment\n\n a , 1,2,3,4,5 \nb,10,20,30,40,50\n";
        let m = parse_telemetry(text).unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m["a"].l1_ref, 1);
        assert_eq!(m["b"].cycles, 50);
    }

    #[test]
    fn telemetry_parsing_rejects_malformed_rows() {
        assert!(parse_telemetry("a,1,2,3").unwrap_err().contains("6 fields"));
        assert!(parse_telemetry("a,x,2,3,4,5")
            .unwrap_err()
            .contains("l1_ref"));
        assert!(parse_telemetry("a,1,2,3,4,5\na,1,2,3,4,5")
            .unwrap_err()
            .contains("duplicate"));
    }

    #[test]
    fn domain_spec_parsing() {
        let d = parse_domains("web:0-1:4; db:2-3,6:6").unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].name, "web");
        assert_eq!(d[0].cores, vec![0, 1]);
        assert_eq!(d[0].reserved_ways, 4);
        assert_eq!(d[1].cores, vec![2, 3, 6]);
        assert!(parse_domains("bad").is_err());
        assert!(parse_domains("a::3").is_err());
        assert!(parse_domains("a:0:x").is_err());
        assert!(parse_domains("").is_err());
    }

    #[test]
    fn daemon_runs_against_a_fixture_tree() {
        let root = std::env::temp_dir().join(format!(
            "dcatd-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        drop(FsBackend::create_fixture(&root, CatCapabilities::with_ways(20), 8).unwrap());

        let telemetry = root.join("telemetry.csv");
        std::fs::write(
            &telemetry,
            "hungry,340000,120000,60000,1000000,20000000\nidle,0,0,0,0,0\n",
        )
        .unwrap();

        let cfg = DaemonConfig {
            resctrl_root: root.clone(),
            telemetry_path: telemetry,
            domains: vec![
                WorkloadHandle::new("hungry", vec![0, 1], 4),
                WorkloadHandle::new("idle", vec![2, 3], 4),
            ],
            dcat: DcatConfig::default(),
            interval: Duration::from_millis(0),
            max_ticks: Some(3),
        };
        let reports = run_daemon(&cfg).unwrap();
        assert_eq!(reports.len(), 2);
        // The idle domain was recognized and defunded.
        assert_eq!(reports[1].ways, 1);
        // The partitions are visible in the filesystem afterwards.
        let schemata = std::fs::read_to_string(root.join("COS2").join("schemata")).unwrap();
        assert!(schemata.contains("L3:0="));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn daemon_fails_cleanly_without_a_tree() {
        let cfg = DaemonConfig {
            resctrl_root: PathBuf::from("/nonexistent/resctrl"),
            telemetry_path: PathBuf::from("/nonexistent/telemetry"),
            domains: vec![WorkloadHandle::new("x", vec![0], 1)],
            dcat: DcatConfig::default(),
            interval: Duration::from_millis(0),
            max_ticks: Some(1),
        };
        assert!(run_daemon(&cfg).is_err());
    }
}
