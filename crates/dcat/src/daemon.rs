//! The dCat daemon: the deployment form of the controller.
//!
//! The paper's prototype is "a C program [that] runs as a daemon in the
//! host OS", reading MSR counters and programming CAT once per interval.
//! This module is the Rust equivalent with the two hardware touchpoints
//! abstracted:
//!
//! * CAT is programmed through [`resctrl::FsBackend`] — point it at a real
//!   `/sys/fs/resctrl` mount on CAT hardware, or at a fixture tree for
//!   testing, and
//! * counters are read from a **telemetry file** that an external sampler
//!   (an MSR reader, a `perf` wrapper, or the simulator) refreshes; the
//!   format is one CSV line per domain:
//!
//! ```text
//! # name,l1_ref,llc_ref,llc_miss,ret_ins,cycles   (monotonic totals)
//! tenant-a,340000,120000,60000,1000000,20000000
//! tenant-b,20000,100,10,1000000,800000
//! ```
//!
//! # Fault tolerance
//!
//! A daemon that runs unattended for hours meets transient failures as a
//! matter of course, so the loop never dies on one. Telemetry reads and
//! resctrl writes go through [`resctrl::retry`]'s bounded
//! retry-with-backoff; when retries exhaust, the tick **degrades**: the
//! previous allocation is held, a structured [`Event`] records why, and
//! the loop moves on. Per-domain problems degrade per domain — a wrapped
//! counter is reconstructed, a reset or stale sample skips just that
//! domain's interval, and a domain whose telemetry stays missing or
//! malformed for [`ResiliencePolicy::quarantine_after`] consecutive
//! ticks is quarantined (allocation frozen, complaints suppressed) until
//! it produces a good sample again. Only *fatal* errors — controller
//! logic bugs, see [`resctrl::ErrorSeverity`] — abort the loop.
//!
//! The `dcatd` binary wraps [`run_daemon`] with command-line parsing.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Duration;

use dcat_obs::{FlightRecorder, Registry, SpanRecord, TickRecord, Tracer, DEFAULT_STEP_BUCKETS};
use perf_events::{CounterSnapshot, WrapOutcome};
use resctrl::fault::FaultPlan;
use resctrl::retry::{with_retries, RetryEvent, RetryPolicy, RetryingController};
use resctrl::{CacheController, FaultingController, FsBackend, ResctrlError};

use crate::config::DcatConfig;
use crate::controller::{DcatController, DomainReport, WorkloadHandle};
use crate::events::{DegradeReason, Event};
use crate::telemetry::{parse_telemetry_lossy, FaultyTelemetry, FileTelemetry, TelemetryFeed};

/// Recovery knobs for the daemon loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResiliencePolicy {
    /// Retry policy for telemetry reads and resctrl writes.
    pub retry: RetryPolicy,
    /// Quarantine a domain after this many consecutive ticks of missing
    /// or malformed telemetry (0 disables quarantine).
    pub quarantine_after: u32,
    /// Tolerate this many consecutive repeats of an active domain's
    /// totals as stale samples (skipping the interval) before accepting
    /// the repeat as a genuine idle.
    pub stale_grace_ticks: u32,
    /// Hardware counter width used to disambiguate wraps from resets.
    pub counter_width_bits: u32,
}

impl Default for ResiliencePolicy {
    fn default() -> Self {
        ResiliencePolicy {
            retry: RetryPolicy::default(),
            quarantine_after: 5,
            stale_grace_ticks: 2,
            // The paper's Xeons expose 48-bit fixed/general counters.
            counter_width_bits: 48,
        }
    }
}

/// Observability knobs for the daemon loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsOptions {
    /// Flight-recorder window: how many of the most recent ticks' spans
    /// and events are retained for the post-mortem dump (0 disables the
    /// recorder entirely).
    pub flight_recorder_ticks: usize,
}

impl Default for ObsOptions {
    fn default() -> Self {
        ObsOptions {
            flight_recorder_ticks: 64,
        }
    }
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Root of the resctrl tree (`/sys/fs/resctrl` on hardware).
    pub resctrl_root: PathBuf,
    /// Path of the telemetry CSV refreshed by the external sampler.
    pub telemetry_path: PathBuf,
    /// Managed workloads; names must match the telemetry file.
    pub domains: Vec<WorkloadHandle>,
    /// Controller thresholds.
    pub dcat: DcatConfig,
    /// Sampling interval (the paper uses 1 s).
    pub interval: Duration,
    /// Stop after this many ticks (`None` = run forever). Used by tests
    /// and by one-shot invocations.
    pub max_ticks: Option<u64>,
    /// Recovery knobs.
    pub resilience: ResiliencePolicy,
    /// Deterministic fault schedule injected into both the resctrl
    /// backend and the telemetry feed (`None` = inject nothing). Drives
    /// the fault-sweep experiments and the end-to-end fault tests.
    pub fault_plan: Option<FaultPlan>,
    /// Observability knobs.
    pub obs: ObsOptions,
}

/// Everything one daemon tick produced, handed to the observer hook.
#[derive(Debug)]
pub struct TickObservation<'a> {
    /// 1-based tick number.
    pub tick: u64,
    /// Per-domain reports. On a degraded tick these are the *held*
    /// reports of the last completed tick (empty if none completed yet).
    pub reports: &'a [DomainReport],
    /// Structured events this tick generated.
    pub events: &'a [Event],
    /// Whether this tick was degraded (no controller decision ran).
    pub degraded: bool,
    /// Pipeline-stage spans this tick, in completion order (nested spans
    /// precede their parents; `tick` closes the list).
    pub spans: &'a [SpanRecord],
    /// Per-domain quarantine flags, in `DaemonConfig::domains` order
    /// (parallel to `reports` on completed ticks).
    pub quarantined: &'a [bool],
    /// A flight-recorder JSONL dump, present only on ticks where an
    /// `InvariantViolation` or `DomainQuarantined` event fired. The daemon
    /// never writes files itself; the embedder (e.g. `dcatd`) persists it.
    pub flight_dump: Option<&'a str>,
}

/// Builds one `dcat-frames/v1` frame from a tick observation. The
/// embedder supplies the policy identity
/// ([`crate::policy::CachePolicy::name`] /
/// [`crate::policy::CachePolicy::frame_ext`]); everything else comes off
/// the observation. `ways_moved` is left 0 for
/// [`dcat_obs::FrameWriter::push`] to fill in against the previous frame.
/// Shared by `dcatd --frames-out` and the bench harness's scenario/fleet
/// exporters.
pub fn frame_from_observation(
    obs: &TickObservation<'_>,
    policy: &str,
    ext: dcat_obs::PolicyExt,
) -> dcat_obs::Frame {
    let reason = if obs.degraded {
        // The degraded-tick event names the failure surface; default to
        // telemetry if an embedder built a degraded observation without one.
        Some(
            obs.events
                .iter()
                .find_map(|e| match e {
                    Event::DegradedTick { reason } => Some(reason.to_string()),
                    _ => None,
                })
                .unwrap_or_else(|| DegradeReason::Telemetry.to_string()),
        )
    } else {
        None
    };
    let domains = obs
        .reports
        .iter()
        .enumerate()
        .map(|(i, r)| dcat_obs::DomainFrame {
            name: r.name.clone(),
            class: r.class.to_string(),
            ways: r.ways,
            cbm: r.cbm,
            ipc: r.ipc,
            norm_ipc: r.norm_ipc,
            miss_rate: r.llc_miss_rate,
            baseline_ipc: r.baseline_ipc,
            quarantined: obs.quarantined.get(i).copied().unwrap_or(false),
            held: r.skipped || obs.degraded,
        })
        .collect();
    dcat_obs::Frame {
        tick: obs.tick,
        policy: policy.to_string(),
        degraded: obs.degraded,
        reason,
        ways_moved: 0,
        events: u64::try_from(obs.events.len()).unwrap_or(u64::MAX),
        ext,
        domains,
    }
}

/// Builds a [`dcat_obs::Frame`] straight from a tick's [`DomainReport`]s —
/// the batch-harness path (scenario sweeps, fleet hosts), where ticks never
/// degrade and quarantine does not exist. `ways_moved` is left 0 for
/// [`dcat_obs::FrameWriter::push`] to fill in.
pub fn frame_from_reports(
    tick: u64,
    policy: &str,
    reports: &[DomainReport],
    ext: dcat_obs::PolicyExt,
) -> dcat_obs::Frame {
    let domains = reports
        .iter()
        .map(|r| dcat_obs::DomainFrame {
            name: r.name.clone(),
            class: r.class.to_string(),
            ways: r.ways,
            cbm: r.cbm,
            ipc: r.ipc,
            norm_ipc: r.norm_ipc,
            miss_rate: r.llc_miss_rate,
            baseline_ipc: r.baseline_ipc,
            quarantined: false,
            held: r.skipped,
        })
        .collect();
    dcat_obs::Frame {
        tick,
        policy: policy.to_string(),
        degraded: false,
        reason: None,
        ways_moved: 0,
        events: 0,
        ext,
        domains,
    }
}

/// Everything a completed daemon run produced beyond the final reports.
#[derive(Debug)]
pub struct DaemonOutcome {
    /// Reports of the final completed tick.
    pub reports: Vec<DomainReport>,
    /// The run's accumulated metrics.
    pub metrics: dcat_obs::Snapshot,
    /// Flight-recorder dump of the last ticks, rendered at exit.
    pub flight_dump: String,
}

/// Parses the telemetry CSV into per-domain snapshots.
///
/// Blank lines and `#` comments are ignored. Returns an error naming the
/// offending line on any malformed row. The daemon loop itself uses
/// [`crate::telemetry::parse_telemetry_lossy`], which drops bad rows
/// individually; this strict variant suits one-shot tooling.
pub fn parse_telemetry(text: &str) -> Result<BTreeMap<String, CounterSnapshot>, String> {
    let mut out = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        let &[name, l1_ref, llc_ref, llc_miss, ret_ins, cycles] = fields.as_slice() else {
            return Err(format!(
                "line {}: expected 6 fields, got {}",
                lineno + 1,
                fields.len()
            ));
        };
        let parse = |s: &str, what: &str| -> Result<u64, String> {
            s.parse()
                .map_err(|e| format!("line {}: bad {what} {s:?}: {e}", lineno + 1))
        };
        let snap = CounterSnapshot {
            l1_ref: parse(l1_ref, "l1_ref")?,
            llc_ref: parse(llc_ref, "llc_ref")?,
            llc_miss: parse(llc_miss, "llc_miss")?,
            ret_ins: parse(ret_ins, "ret_ins")?,
            cycles: parse(cycles, "cycles")?,
        };
        if out.insert(name.to_string(), snap).is_some() {
            return Err(format!("line {}: duplicate domain {name:?}", lineno + 1));
        }
    }
    Ok(out)
}

/// Rejects duplicate names and core lists that overlap across domains.
///
/// Two domains sharing a core would silently fight over that core's COS
/// assignment — the last `assign_core` wins and one tenant runs under
/// the other's mask — and duplicate names make telemetry rows ambiguous.
pub fn validate_domain_set(domains: &[WorkloadHandle]) -> Result<(), String> {
    let mut seen_names: BTreeMap<&str, usize> = BTreeMap::new();
    let mut core_owner: BTreeMap<u32, &str> = BTreeMap::new();
    for (i, d) in domains.iter().enumerate() {
        if let Some(prev) = seen_names.insert(d.name.as_str(), i) {
            return Err(format!(
                "duplicate domain name {:?} (domains {prev} and {i})",
                d.name
            ));
        }
        for &core in &d.cores {
            if let Some(owner) = core_owner.insert(core, d.name.as_str()) {
                if owner != d.name {
                    return Err(format!(
                        "domains {:?} and {:?} both claim core {core}",
                        owner, d.name
                    ));
                }
                return Err(format!("domain {:?} lists core {core} twice", d.name));
            }
        }
    }
    Ok(())
}

/// Parses a `;`-separated `name:cores:ways` domain spec list, e.g.
/// `"web:0-1:4;db:2-3,6:6"` (core lists use the cpus_list syntax, so the
/// domain separator is `;` rather than `,`). Duplicate names and
/// overlapping core lists are rejected.
pub fn parse_domains(spec: &str) -> Result<Vec<WorkloadHandle>, String> {
    let mut handles = Vec::new();
    for part in spec.split(';') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let pieces: Vec<&str> = part.split(':').collect();
        let &[name, cores_spec, ways_spec] = pieces.as_slice() else {
            return Err(format!("domain spec {part:?}: expected name:cores:ways"));
        };
        let cores =
            resctrl::fs::parse_cpu_list(cores_spec).map_err(|e| format!("domain {part:?}: {e}"))?;
        if cores.is_empty() {
            return Err(format!("domain {part:?}: empty core list"));
        }
        let ways: u32 = ways_spec
            .parse()
            .map_err(|e| format!("domain {part:?}: bad ways: {e}"))?;
        handles.push(WorkloadHandle::new(name, cores, ways));
    }
    if handles.is_empty() {
        return Err("no domains specified".to_string());
    }
    validate_domain_set(&handles)?;
    Ok(handles)
}

/// Runs the daemon loop; returns the reports of the final tick.
pub fn run_daemon(cfg: &DaemonConfig) -> Result<Vec<DomainReport>, ResctrlError> {
    run_daemon_with(cfg, |_| {})
}

fn telemetry_retry_event(e: RetryEvent) -> Event {
    match e {
        RetryEvent::Retried { attempt, error, .. } => Event::TelemetryRetried { attempt, error },
        RetryEvent::Exhausted {
            attempts, error, ..
        } => Event::TelemetryExhausted { attempts, error },
    }
}

fn resctrl_retry_event(e: RetryEvent) -> Event {
    match e {
        RetryEvent::Retried { op, attempt, error } => Event::ResctrlRetried { op, attempt, error },
        RetryEvent::Exhausted {
            op,
            attempts,
            error,
        } => Event::ResctrlExhausted {
            op,
            attempts,
            error,
        },
    }
}

/// Per-domain sampling state the loop threads from tick to tick.
struct DomainState {
    /// Monotonic totals fed to the controller: the raw samples, rebased
    /// across counter wraps so they never go backwards.
    rebased: CounterSnapshot,
    /// The last raw sample, for wrap-aware delta computation.
    raw_last: Option<CounterSnapshot>,
    /// Whether the last valid interval retired instructions (a stale
    /// sample is only suspicious for an active domain).
    active: bool,
    /// Consecutive samples identical to the previous one while active.
    stale_streak: u32,
    /// Consecutive ticks with missing/malformed telemetry.
    bad_streak: u32,
    /// Frozen: telemetry stayed bad for `quarantine_after` ticks.
    quarantined: bool,
    /// Whether any telemetry sample ever named this domain.
    ever_seen: bool,
}

impl DomainState {
    fn new() -> Self {
        DomainState {
            rebased: CounterSnapshot::default(),
            raw_last: None,
            active: false,
            stale_streak: 0,
            bad_streak: 0,
            quarantined: false,
            ever_seen: false,
        }
    }

    /// Ingests one raw sample; returns whether the interval is valid and
    /// pushes any per-domain events.
    fn ingest(
        &mut self,
        name: &str,
        raw: CounterSnapshot,
        policy: &ResiliencePolicy,
        events: &mut Vec<Event>,
    ) -> bool {
        self.ever_seen = true;
        self.bad_streak = 0;
        if self.quarantined {
            // Back from the dead: resync and spend one tick re-grounding
            // the totals before trusting an interval again.
            self.quarantined = false;
            self.stale_streak = 0;
            self.raw_last = Some(raw);
            events.push(Event::DomainRecovered {
                domain: name.to_string(),
            });
            return false;
        }
        let Some(prev) = self.raw_last else {
            // First sample: totals feed the controller directly (its
            // recorded totals start at zero).
            self.rebased = raw;
            self.raw_last = Some(raw);
            self.active = raw.ret_ins > 0;
            return true;
        };
        if raw == prev && self.active && self.stale_streak < policy.stale_grace_ticks {
            // An active workload's totals never stand perfectly still; a
            // verbatim repeat is a wedged sampler until it persists past
            // the grace (then it is accepted below as a genuine idle).
            self.stale_streak += 1;
            events.push(Event::StaleSample {
                domain: name.to_string(),
            });
            return false;
        }
        self.stale_streak = 0;
        match raw.delta_since_wrap_aware(&prev, policy.counter_width_bits) {
            WrapOutcome::Monotonic(delta) => {
                self.rebased = self.rebased.merged_with(&delta);
                self.raw_last = Some(raw);
                self.active = delta.ret_ins > 0;
                true
            }
            WrapOutcome::Wrapped(delta) => {
                self.rebased = self.rebased.merged_with(&delta);
                self.raw_last = Some(raw);
                self.active = delta.ret_ins > 0;
                events.push(Event::CounterWrapped {
                    domain: name.to_string(),
                });
                true
            }
            WrapOutcome::Invalid => {
                // A reset: no trustworthy delta exists. Resync so the
                // next interval subtracts from the new epoch.
                self.raw_last = Some(raw);
                events.push(Event::CounterReset {
                    domain: name.to_string(),
                });
                false
            }
        }
    }

    /// Records a tick with no usable sample; returns whether this tick
    /// crossed the quarantine threshold.
    fn miss(&mut self, policy: &ResiliencePolicy) -> bool {
        if self.quarantined {
            return false;
        }
        self.bad_streak += 1;
        if policy.quarantine_after > 0 && self.bad_streak >= policy.quarantine_after {
            self.quarantined = true;
            return true;
        }
        false
    }
}

/// [`run_daemon`] with a per-tick observer.
///
/// `observe` is called once per tick (ticks count from 1), before the
/// inter-tick sleep, with that tick's [`TickObservation`] — reports,
/// structured events, and whether the tick was degraded. Integration
/// tests use the hook to rewrite the telemetry file between ticks —
/// playing the role of the external sampler without a second thread —
/// and to record the class/ways trajectory; a monitoring wrapper exports
/// events from it (`dcatd` prints them to stderr).
pub fn run_daemon_with(
    cfg: &DaemonConfig,
    observe: impl FnMut(&TickObservation),
) -> Result<Vec<DomainReport>, ResctrlError> {
    run_daemon_observed(cfg, observe).map(|outcome| outcome.reports)
}

/// [`run_daemon_with`] returning the full [`DaemonOutcome`] — final
/// reports plus the run's metrics snapshot and exit flight-recorder dump.
pub fn run_daemon_observed(
    cfg: &DaemonConfig,
    mut observe: impl FnMut(&TickObservation),
) -> Result<DaemonOutcome, ResctrlError> {
    validate_domain_set(&cfg.domains).map_err(ResctrlError::Parse)?;
    let policy = cfg.resilience;
    let plan = cfg.fault_plan.clone().unwrap_or_default();

    // Construction is fail-fast: a missing resctrl tree at startup is a
    // configuration error, not weather.
    let backend = FsBackend::open(&cfg.resctrl_root)?;
    let mut cat =
        RetryingController::new(FaultingController::new(backend, plan.clone()), policy.retry);
    let mut controller = DcatController::new(cfg.dcat, cfg.domains.clone(), &mut cat)?;
    let total_ways = cat.capabilities().cbm_len;
    let mut feed = FaultyTelemetry::new(FileTelemetry::new(&cfg.telemetry_path), plan);

    let n = cfg.domains.len();
    let mut states: Vec<DomainState> = (0..n).map(|_| DomainState::new()).collect();
    let mut snapshots = vec![CounterSnapshot::default(); n];
    let mut final_reports: Vec<DomainReport> = Vec::new();
    let mut events: Vec<Event> = Vec::new();
    let mut registry = Registry::new();
    let mut tracer = Tracer::new();
    let mut recorder = FlightRecorder::new(cfg.obs.flight_recorder_ticks);
    let mut prev_ways: Vec<Option<u32>> = vec![None; n];
    let mut tick = 0u64;
    loop {
        if let Some(max) = cfg.max_ticks {
            if tick >= max {
                break;
            }
        }
        tick += 1;
        events.clear();
        cat.inner_mut().set_tick(tick);
        tracer.set_tick(tick);
        tracer.enter("tick");

        // Telemetry acquisition, with retries; exhaustion degrades the
        // whole tick (nothing per-domain can be said without a sample).
        tracer.enter("telemetry");
        let mut retry_log = Vec::new();
        let text = with_retries(policy.retry, "telemetry_read", &mut retry_log, || {
            feed.read(tick)
        });
        events.extend(retry_log.into_iter().map(telemetry_retry_event));
        let text = match text {
            Ok(text) => Some(text),
            Err(e) if e.is_transient() => {
                events.push(Event::DegradedTick {
                    reason: DegradeReason::Telemetry,
                });
                None
            }
            Err(e) => return Err(e),
        };

        let degraded = match &text {
            None => {
                tracer.exit(); // telemetry
                true
            }
            Some(text) => {
                let (samples, issues) = parse_telemetry_lossy(text);
                for issue in issues {
                    // A quarantined domain's rows stay broken tick after
                    // tick; one quarantine event stands in for the stream
                    // of complaints.
                    let suppressed = issue.domain.as_deref().is_some_and(|name| {
                        cfg.domains
                            .iter()
                            .position(|d| d.name == name)
                            .and_then(|i| states.get(i))
                            .is_some_and(|s| s.quarantined)
                    });
                    if !suppressed {
                        events.push(Event::RowMalformed {
                            domain: issue.domain,
                            line: issue.line,
                            message: issue.message,
                        });
                    }
                }

                let mut valid = vec![true; n];
                let lanes = cfg
                    .domains
                    .iter()
                    .zip(states.iter_mut())
                    .zip(valid.iter_mut().zip(snapshots.iter_mut()));
                for ((domain, state), (valid_slot, snap_slot)) in lanes {
                    let name = &domain.name;
                    match samples.get(name) {
                        Some(raw) => {
                            *valid_slot = state.ingest(name, *raw, &policy, &mut events);
                        }
                        None => {
                            *valid_slot = false;
                            if state.miss(&policy) {
                                events.push(Event::DomainQuarantined {
                                    domain: name.clone(),
                                    after_ticks: state.bad_streak,
                                });
                            }
                        }
                    }
                    *snap_slot = state.rebased;
                }
                if tick == 1 {
                    // Satellite check: a domain the sampler never mentions
                    // would otherwise sit silent forever at its initial
                    // allocation.
                    for (d, state) in cfg.domains.iter().zip(states.iter()) {
                        if !state.ever_seen {
                            events.push(Event::DomainSilent {
                                domain: d.name.clone(),
                            });
                        }
                    }
                }
                tracer.exit(); // telemetry

                let result = controller.tick_observed(&snapshots, &valid, &mut cat, &mut tracer);
                events.extend(cat.take_events().into_iter().map(resctrl_retry_event));
                let degraded = match result {
                    Ok(reports) => {
                        final_reports = reports;
                        false
                    }
                    Err(e) if e.is_transient() => {
                        events.push(Event::DegradedTick {
                            reason: DegradeReason::Resctrl,
                        });
                        true
                    }
                    Err(e) => return Err(e),
                };

                // Audit the recorded allocation even (especially) on
                // degraded ticks: holding must never leave overlapping
                // masks or starve a domain below its floor.
                if let Err(violation) = crate::invariants::check(
                    &controller.domain_views(),
                    total_ways,
                    cfg.dcat.min_ways,
                ) {
                    events.push(Event::InvariantViolation {
                        message: violation.to_string(),
                    });
                }
                degraded
            }
        };
        tracer.exit(); // tick
        let spans = tracer.drain();

        registry.counter_add("dcat_ticks_total", &[], 1);
        if degraded {
            let reason = if text.is_some() {
                "resctrl"
            } else {
                "telemetry"
            };
            registry.counter_add("dcat_degraded_ticks_total", &[("reason", reason)], 1);
        }
        for e in &events {
            registry.counter_add("dcat_events_total", &[("event", e.name())], 1);
        }
        for s in &spans {
            registry.histogram_observe(
                "dcat_span_steps",
                &[("span", s.name)],
                DEFAULT_STEP_BUCKETS,
                s.steps(),
            );
            if s.cycles > 0 {
                registry.histogram_observe(
                    "dcat_span_cycles",
                    &[("span", s.name)],
                    dcat_obs::CYCLE_BUCKETS,
                    s.cycles,
                );
            }
        }
        if !degraded {
            for (report, prev) in final_reports.iter().zip(prev_ways.iter_mut()) {
                registry.gauge_set(
                    "dcat_domain_ways",
                    &[("domain", &report.name)],
                    f64::from(report.ways),
                );
                if let Some(prev_ways) = *prev {
                    let moved = u64::from(report.ways.abs_diff(prev_ways));
                    if moved > 0 {
                        registry.counter_add(
                            "dcat_ways_moved_total",
                            &[("domain", &report.name)],
                            moved,
                        );
                    }
                }
                *prev = Some(report.ways);
                if report.phase_changed {
                    registry.counter_add(
                        "dcat_phase_changes_total",
                        &[("domain", &report.name)],
                        1,
                    );
                }
            }
        }
        let quarantine_flags: Vec<bool> = states.iter().map(|s| s.quarantined).collect();
        let quarantined =
            u32::try_from(quarantine_flags.iter().filter(|&&q| q).count()).unwrap_or(u32::MAX);
        registry.gauge_set("dcat_quarantined_domains", &[], f64::from(quarantined));

        recorder.record(TickRecord {
            tick,
            degraded,
            spans: spans.clone(),
            events: events.iter().map(Event::to_json).collect(),
        });
        // A quarantine or invariant violation is exactly the moment a
        // post-mortem wants the recent window: surface a dump through the
        // observation so the embedder can persist it without re-running.
        let flight_dump = if events.iter().any(|e| {
            matches!(
                e,
                Event::InvariantViolation { .. } | Event::DomainQuarantined { .. }
            )
        }) {
            Some(recorder.dump_jsonl())
        } else {
            None
        };

        observe(&TickObservation {
            tick,
            reports: &final_reports,
            events: &events,
            degraded,
            spans: &spans,
            quarantined: &quarantine_flags,
            flight_dump: flight_dump.as_deref(),
        });
        sleep_between_ticks(cfg, tick);
    }
    Ok(DaemonOutcome {
        reports: final_reports,
        metrics: registry.take(),
        flight_dump: recorder.dump_jsonl(),
    })
}

fn sleep_between_ticks(cfg: &DaemonConfig, tick: u64) {
    let last = cfg.max_ticks.is_some_and(|max| tick >= max);
    if !last && !cfg.interval.is_zero() {
        std::thread::sleep(cfg.interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resctrl::CatCapabilities;

    fn base_config(root: PathBuf, domains: Vec<WorkloadHandle>) -> DaemonConfig {
        DaemonConfig {
            telemetry_path: root.join("telemetry.csv"),
            resctrl_root: root,
            domains,
            dcat: DcatConfig::default(),
            interval: Duration::from_millis(0),
            max_ticks: Some(3),
            resilience: ResiliencePolicy::default(),
            fault_plan: None,
            obs: ObsOptions::default(),
        }
    }

    #[test]
    fn telemetry_parsing_happy_path() {
        let text = "# comment\n\n a , 1,2,3,4,5 \nb,10,20,30,40,50\n";
        let m = parse_telemetry(text).unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m["a"].l1_ref, 1);
        assert_eq!(m["b"].cycles, 50);
    }

    #[test]
    fn telemetry_parsing_rejects_malformed_rows() {
        assert!(parse_telemetry("a,1,2,3").unwrap_err().contains("6 fields"));
        assert!(parse_telemetry("a,x,2,3,4,5")
            .unwrap_err()
            .contains("l1_ref"));
        assert!(parse_telemetry("a,1,2,3,4,5\na,1,2,3,4,5")
            .unwrap_err()
            .contains("duplicate"));
    }

    #[test]
    fn domain_spec_parsing() {
        let d = parse_domains("web:0-1:4; db:2-3,6:6").unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].name, "web");
        assert_eq!(d[0].cores, vec![0, 1]);
        assert_eq!(d[0].reserved_ways, 4);
        assert_eq!(d[1].cores, vec![2, 3, 6]);
        assert!(parse_domains("bad").is_err());
        assert!(parse_domains("a::3").is_err());
        assert!(parse_domains("a:0:x").is_err());
        assert!(parse_domains("").is_err());
    }

    #[test]
    fn domain_spec_rejects_duplicate_names() {
        let err = parse_domains("web:0-1:4;web:2-3:4").unwrap_err();
        assert!(err.contains("duplicate domain name"), "{err}");
    }

    #[test]
    fn domain_spec_rejects_overlapping_cores() {
        let err = parse_domains("web:0-2:4;db:2-3:4").unwrap_err();
        assert!(err.contains("both claim core 2"), "{err}");
    }

    #[test]
    fn daemon_rejects_invalid_domain_sets_up_front() {
        let cfg = base_config(
            PathBuf::from("/nonexistent"),
            vec![
                WorkloadHandle::new("a", vec![0], 1),
                WorkloadHandle::new("a", vec![1], 1),
            ],
        );
        let err = run_daemon(&cfg).unwrap_err();
        assert!(err.to_string().contains("duplicate domain name"), "{err}");
    }

    #[test]
    fn daemon_runs_against_a_fixture_tree() {
        let root = std::env::temp_dir().join(format!(
            "dcatd-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        drop(FsBackend::create_fixture(&root, CatCapabilities::with_ways(20), 8).unwrap());

        std::fs::write(
            root.join("telemetry.csv"),
            "hungry,340000,120000,60000,1000000,20000000\nidle,0,0,0,0,0\n",
        )
        .unwrap();

        let cfg = base_config(
            root.clone(),
            vec![
                WorkloadHandle::new("hungry", vec![0, 1], 4),
                WorkloadHandle::new("idle", vec![2, 3], 4),
            ],
        );
        let reports = run_daemon(&cfg).unwrap();
        assert_eq!(reports.len(), 2);
        // The idle domain was recognized and defunded.
        assert_eq!(reports[1].ways, 1);
        // The partitions are visible in the filesystem afterwards.
        let schemata = std::fs::read_to_string(root.join("COS2").join("schemata")).unwrap();
        assert!(schemata.contains("L3:0="));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn daemon_fails_cleanly_without_a_tree() {
        let cfg = base_config(
            PathBuf::from("/nonexistent/resctrl"),
            vec![WorkloadHandle::new("x", vec![0], 1)],
        );
        assert!(run_daemon(&cfg).is_err());
    }

    #[test]
    fn silent_domain_is_flagged_after_the_first_interval() {
        let root = std::env::temp_dir().join(format!(
            "dcatd-silent-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        drop(FsBackend::create_fixture(&root, CatCapabilities::with_ways(20), 8).unwrap());
        // Only "loud" ever appears in telemetry; "ghost" is configured
        // but never sampled.
        std::fs::write(
            root.join("telemetry.csv"),
            "loud,340000,120000,60000,1000000,20000000\n",
        )
        .unwrap();
        let mut cfg = base_config(
            root.clone(),
            vec![
                WorkloadHandle::new("loud", vec![0, 1], 4),
                WorkloadHandle::new("ghost", vec![2, 3], 4),
            ],
        );
        cfg.max_ticks = Some(7);
        let mut silent_ticks = Vec::new();
        let mut quarantine_ticks = Vec::new();
        run_daemon_with(&cfg, |obs| {
            for e in obs.events {
                match e {
                    Event::DomainSilent { domain } if domain == "ghost" => {
                        silent_ticks.push(obs.tick);
                    }
                    Event::DomainQuarantined { domain, .. } if domain == "ghost" => {
                        quarantine_ticks.push(obs.tick);
                    }
                    _ => {}
                }
            }
        })
        .unwrap();
        assert_eq!(
            silent_ticks,
            vec![1],
            "warned once, after the first interval"
        );
        assert_eq!(quarantine_ticks, vec![5], "default quarantine_after = 5");
        std::fs::remove_dir_all(&root).unwrap();
    }
}
