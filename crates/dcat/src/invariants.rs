//! Controller-level invariants.
//!
//! These are the safety properties every interval of [`crate::DcatController`]
//! must uphold, independent of workload behavior or configuration:
//!
//! * **Way conservation** — the granted way counts never oversubscribe the
//!   cache.
//! * **Allocation floor** — no tenant drops below the configured minimum
//!   (clamped to its contracted reservation; a tenant that reserved less
//!   than `min_ways` is floored at its reservation instead).
//! * **Mask/grant agreement** — the programmed CBM of each domain grants
//!   exactly the way count the controller believes it granted.
//! * **Hardware legality** — the programmed masks are non-empty,
//!   contiguous, in range, and pairwise disjoint (delegated to
//!   [`resctrl::invariants::check_layout`]).
//!
//! The same predicates run in three places: a `debug_assert!` at the end of
//! [`crate::DcatController::tick`], the `dcat-verify` model checker after
//! every explored transition, and any test that wants a one-call audit of
//! controller state.

use resctrl::Cbm;

use crate::state::WorkloadClass;

/// Read-only snapshot of one domain, as much as invariant checking needs.
#[derive(Debug, Clone, Copy)]
pub struct DomainView {
    /// Current class in the Figure-6 state machine.
    pub class: WorkloadClass,
    /// Ways the controller granted for the next interval.
    pub ways: u32,
    /// The tenant's contracted reservation.
    pub reserved_ways: u32,
    /// The mask currently programmed, if any has been applied yet.
    pub cbm: Option<Cbm>,
}

/// Checks every controller-level invariant over the domains of one
/// controller. Returns a description of the first violation.
pub fn check(views: &[DomainView], total_ways: u32, min_ways: u32) -> Result<(), String> {
    let granted: u32 = views.iter().map(|v| v.ways).sum();
    if granted > total_ways {
        return Err(format!(
            "way conservation violated: {granted} ways granted on a {total_ways}-way cache"
        ));
    }
    for (i, v) in views.iter().enumerate() {
        let floor = min_ways.min(v.reserved_ways).max(1);
        if v.ways < floor {
            return Err(format!(
                "domain {i} ({:?}) granted {} ways, below its floor of {floor}",
                v.class, v.ways
            ));
        }
        if let Some(m) = v.cbm {
            if m.ways() != v.ways {
                return Err(format!(
                    "domain {i} ({:?}) mask {m} grants {} ways but the controller granted {}",
                    v.class,
                    m.ways(),
                    v.ways
                ));
            }
        }
    }
    let masks: Vec<Cbm> = views.iter().filter_map(|v| v.cbm).collect();
    resctrl::invariants::check_layout(&masks, total_ways)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(class: WorkloadClass, ways: u32, reserved: u32, cbm: Option<Cbm>) -> DomainView {
        DomainView {
            class,
            ways,
            reserved_ways: reserved,
            cbm,
        }
    }

    #[test]
    fn legal_state_accepted() {
        let views = [
            view(WorkloadClass::Keeper, 4, 4, Some(Cbm::from_way_range(0, 4))),
            view(WorkloadClass::Donor, 1, 4, Some(Cbm::from_way_range(7, 1))),
        ];
        assert_eq!(check(&views, 20, 1), Ok(()));
    }

    #[test]
    fn violations_detected() {
        // Oversubscription.
        let over = [
            view(WorkloadClass::Keeper, 12, 4, None),
            view(WorkloadClass::Keeper, 12, 4, None),
        ];
        assert!(check(&over, 20, 1).is_err());
        // Below the floor.
        let starved = [view(WorkloadClass::Donor, 1, 4, None)];
        assert!(check(&starved, 20, 2).is_err());
        // A reservation smaller than min_ways lowers the floor.
        let small_reserved = [view(WorkloadClass::Donor, 1, 1, None)];
        assert!(check(&small_reserved, 20, 2).is_ok());
        // Mask width disagrees with the granted count.
        let lying = [view(
            WorkloadClass::Keeper,
            3,
            3,
            Some(Cbm::from_way_range(0, 2)),
        )];
        assert!(check(&lying, 20, 1).is_err());
        // Overlapping masks.
        let overlap = [
            view(WorkloadClass::Keeper, 2, 2, Some(Cbm::from_way_range(0, 2))),
            view(WorkloadClass::Keeper, 2, 2, Some(Cbm::from_way_range(1, 2))),
        ];
        assert!(check(&overlap, 20, 1).is_err());
    }
}
