//! Controller-level invariants.
//!
//! These are the safety properties every interval of [`crate::DcatController`]
//! must uphold, independent of workload behavior or configuration:
//!
//! * **Way conservation** — the granted way counts never oversubscribe the
//!   cache.
//! * **Allocation floor** — no tenant drops below the configured minimum
//!   (clamped to its contracted reservation; a tenant that reserved less
//!   than `min_ways` is floored at its reservation instead).
//! * **Mask/grant agreement** — the programmed CBM of each domain grants
//!   exactly the way count the controller believes it granted.
//! * **Hardware legality** — the programmed masks are non-empty,
//!   contiguous, in range, and pairwise disjoint (delegated to
//!   [`resctrl::invariants::check_layout`]).
//!
//! The same predicates run in three places: a `debug_assert!` at the end of
//! [`crate::DcatController::tick`], the `dcat-verify` model checker after
//! every explored transition, and any test that wants a one-call audit of
//! controller state.

use std::fmt;

use resctrl::Cbm;

use crate::state::WorkloadClass;

/// Read-only snapshot of one domain, as much as invariant checking needs.
#[derive(Debug, Clone, Copy)]
pub struct DomainView {
    /// Current class in the Figure-6 state machine.
    pub class: WorkloadClass,
    /// Ways the controller granted for the next interval.
    pub ways: u32,
    /// The tenant's contracted reservation.
    pub reserved_ways: u32,
    /// The mask currently programmed, if any has been applied yet.
    pub cbm: Option<Cbm>,
}

/// One violated controller invariant, carried structurally so the
/// per-tick audit allocates nothing on the checked (hot) path; the
/// [`fmt::Display`] impl renders the description only when a violation
/// is actually reported.
#[derive(Debug, Clone, PartialEq)]
pub enum InvariantViolation {
    /// The granted way counts oversubscribe the cache.
    Oversubscribed {
        /// Total ways granted across domains.
        granted: u32,
        /// Cache capacity in ways.
        total_ways: u32,
    },
    /// A domain dropped below its allocation floor.
    BelowFloor {
        /// Domain index.
        domain: usize,
        /// The domain's class when it was starved.
        class: WorkloadClass,
        /// Ways granted.
        ways: u32,
        /// The floor it must not drop below.
        floor: u32,
    },
    /// A programmed mask grants a different way count than recorded.
    MaskMismatch {
        /// Domain index.
        domain: usize,
        /// The domain's class.
        class: WorkloadClass,
        /// The programmed mask.
        cbm: Cbm,
        /// Ways the controller believes it granted.
        granted: u32,
    },
    /// The programmed layout is illegal (delegated to
    /// [`resctrl::invariants::check_layout`], whose description is
    /// built only on the violation path).
    Layout(String),
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvariantViolation::Oversubscribed {
                granted,
                total_ways,
            } => write!(
                f,
                "way conservation violated: {granted} ways granted on a {total_ways}-way cache"
            ),
            InvariantViolation::BelowFloor {
                domain,
                class,
                ways,
                floor,
            } => write!(
                f,
                "domain {domain} ({class:?}) granted {ways} ways, below its floor of {floor}"
            ),
            InvariantViolation::MaskMismatch {
                domain,
                class,
                cbm,
                granted,
            } => write!(
                f,
                "domain {domain} ({class:?}) mask {cbm} grants {} ways but the controller \
                 granted {granted}",
                cbm.ways()
            ),
            InvariantViolation::Layout(msg) => f.write_str(msg),
        }
    }
}

/// Checks every controller-level invariant over the domains of one
/// controller. Returns the first violation, structurally.
pub fn check(
    views: &[DomainView],
    total_ways: u32,
    min_ways: u32,
) -> Result<(), InvariantViolation> {
    let granted: u32 = views.iter().map(|v| v.ways).sum();
    if granted > total_ways {
        return Err(InvariantViolation::Oversubscribed {
            granted,
            total_ways,
        });
    }
    for (i, v) in views.iter().enumerate() {
        let floor = min_ways.min(v.reserved_ways).max(1);
        if v.ways < floor {
            return Err(InvariantViolation::BelowFloor {
                domain: i,
                class: v.class,
                ways: v.ways,
                floor,
            });
        }
        if let Some(m) = v.cbm {
            if m.ways() != v.ways {
                return Err(InvariantViolation::MaskMismatch {
                    domain: i,
                    class: v.class,
                    cbm: m,
                    granted: v.ways,
                });
            }
        }
    }
    let mut masks: Vec<Cbm> = Vec::with_capacity(views.len());
    for v in views {
        if let Some(m) = v.cbm {
            masks.push(m);
        }
    }
    resctrl::invariants::check_layout(&masks, total_ways).map_err(InvariantViolation::Layout)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(class: WorkloadClass, ways: u32, reserved: u32, cbm: Option<Cbm>) -> DomainView {
        DomainView {
            class,
            ways,
            reserved_ways: reserved,
            cbm,
        }
    }

    #[test]
    fn legal_state_accepted() {
        let views = [
            view(WorkloadClass::Keeper, 4, 4, Some(Cbm::from_way_range(0, 4))),
            view(WorkloadClass::Donor, 1, 4, Some(Cbm::from_way_range(7, 1))),
        ];
        assert_eq!(check(&views, 20, 1), Ok(()));
    }

    #[test]
    fn violations_detected() {
        // Oversubscription.
        let over = [
            view(WorkloadClass::Keeper, 12, 4, None),
            view(WorkloadClass::Keeper, 12, 4, None),
        ];
        assert!(check(&over, 20, 1).is_err());
        // Below the floor.
        let starved = [view(WorkloadClass::Donor, 1, 4, None)];
        assert!(check(&starved, 20, 2).is_err());
        // A reservation smaller than min_ways lowers the floor.
        let small_reserved = [view(WorkloadClass::Donor, 1, 1, None)];
        assert!(check(&small_reserved, 20, 2).is_ok());
        // Mask width disagrees with the granted count.
        let lying = [view(
            WorkloadClass::Keeper,
            3,
            3,
            Some(Cbm::from_way_range(0, 2)),
        )];
        assert!(check(&lying, 20, 1).is_err());
        // Overlapping masks.
        let overlap = [
            view(WorkloadClass::Keeper, 2, 2, Some(Cbm::from_way_range(0, 2))),
            view(WorkloadClass::Keeper, 2, 2, Some(Cbm::from_way_range(1, 2))),
        ];
        assert!(check(&overlap, 20, 1).is_err());
    }
}
