//! dcatd — the dCat daemon.
//!
//! Usage:
//!
//! ```text
//! dcatd --resctrl <root> --telemetry <file> --domains <name:cores:ways;...>
//!       [--interval-ms <n>] [--ticks <n>] [--max-performance]
//! ```
//!
//! Example against a fixture tree (no hardware needed):
//!
//! ```text
//! dcatd --resctrl /tmp/resctrl --telemetry /tmp/counters.csv \
//!       --domains "web:0-1:4;db:2-3:6" --interval-ms 1000
//! ```
//!
//! On CAT hardware, point `--resctrl` at `/sys/fs/resctrl` and refresh the
//! telemetry file from an MSR/perf sampler once per interval.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use dcat::daemon::{parse_domains, run_daemon, DaemonConfig};
use dcat::DcatConfig;

fn usage() -> &'static str {
    "usage: dcatd --resctrl <root> --telemetry <file> \
     --domains <name:cores:ways;...> [--interval-ms <n>] [--ticks <n>] \
     [--max-performance]"
}

fn parse_args() -> Result<DaemonConfig, String> {
    let mut resctrl_root: Option<PathBuf> = None;
    let mut telemetry_path: Option<PathBuf> = None;
    let mut domains = None;
    let mut interval = Duration::from_secs(1);
    let mut max_ticks = None;
    let mut dcat = DcatConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| -> Result<String, String> {
            args.next()
                .ok_or_else(|| format!("{what} requires a value"))
        };
        match arg.as_str() {
            "--resctrl" => resctrl_root = Some(PathBuf::from(value("--resctrl")?)),
            "--telemetry" => telemetry_path = Some(PathBuf::from(value("--telemetry")?)),
            "--domains" => domains = Some(parse_domains(&value("--domains")?)?),
            "--interval-ms" => {
                let ms: u64 = value("--interval-ms")?
                    .parse()
                    .map_err(|e| format!("bad --interval-ms: {e}"))?;
                interval = Duration::from_millis(ms);
            }
            "--ticks" => {
                max_ticks = Some(
                    value("--ticks")?
                        .parse()
                        .map_err(|e| format!("bad --ticks: {e}"))?,
                );
            }
            "--max-performance" => dcat = DcatConfig::max_performance(),
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown argument {other:?}\n{}", usage())),
        }
    }
    Ok(DaemonConfig {
        resctrl_root: resctrl_root.ok_or_else(|| format!("--resctrl is required\n{}", usage()))?,
        telemetry_path: telemetry_path
            .ok_or_else(|| format!("--telemetry is required\n{}", usage()))?,
        domains: domains.ok_or_else(|| format!("--domains is required\n{}", usage()))?,
        dcat,
        interval,
        max_ticks,
    })
}

fn main() -> ExitCode {
    let cfg = match parse_args() {
        Ok(cfg) => cfg,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    match run_daemon(&cfg) {
        Ok(reports) => {
            for r in reports {
                println!(
                    "{}: {} ways, class {}, ipc {:.3}",
                    r.name, r.ways, r.class, r.ipc
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("dcatd: {e}");
            ExitCode::FAILURE
        }
    }
}
