//! dcatd — the dCat daemon.
//!
//! Usage:
//!
//! ```text
//! dcatd --resctrl <root> --telemetry <file> --domains <name:cores:ways;...>
//!       [--interval-ms <n>] [--ticks <n>] [--max-performance]
//!       [--retry-attempts <n>] [--retry-backoff-ms <n>] [--quarantine-after <n>]
//!       [--counter-width-bits <n>]
//!       [--fault-seed <n> --fault-rate <p> --fault-ticks <n>]
//! ```
//!
//! Example against a fixture tree (no hardware needed):
//!
//! ```text
//! dcatd --resctrl /tmp/resctrl --telemetry /tmp/counters.csv \
//!       --domains "web:0-1:4;db:2-3:6" --interval-ms 1000
//! ```
//!
//! On CAT hardware, point `--resctrl` at `/sys/fs/resctrl` and refresh the
//! telemetry file from an MSR/perf sampler once per interval.
//!
//! Structured per-tick events (retries, degraded ticks, counter wraps,
//! quarantines) are printed to stderr as `tick=<n> event=<name> ...` lines.
//! The `--fault-*` flags inject a seeded random fault schedule into both
//! the telemetry feed and the resctrl backend — for resilience drills
//! against fixture trees, not for production mounts.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use dcat::daemon::{parse_domains, run_daemon_with, DaemonConfig, ResiliencePolicy};
use dcat::DcatConfig;
use resctrl::fault::FaultPlan;

fn usage() -> &'static str {
    "usage: dcatd --resctrl <root> --telemetry <file> \
     --domains <name:cores:ways;...> [--interval-ms <n>] [--ticks <n>] \
     [--max-performance] [--retry-attempts <n>] [--retry-backoff-ms <n>] \
     [--quarantine-after <n>] [--counter-width-bits <n>] \
     [--fault-seed <n> --fault-rate <p> --fault-ticks <n>]"
}

fn parse_args() -> Result<DaemonConfig, String> {
    let mut resctrl_root: Option<PathBuf> = None;
    let mut telemetry_path: Option<PathBuf> = None;
    let mut domains = None;
    let mut interval = Duration::from_secs(1);
    let mut max_ticks = None;
    let mut dcat = DcatConfig::default();
    let mut resilience = ResiliencePolicy::default();
    let mut fault_seed: Option<u64> = None;
    let mut fault_rate = 0.1f64;
    let mut fault_ticks: Option<u64> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| -> Result<String, String> {
            args.next()
                .ok_or_else(|| format!("{what} requires a value"))
        };
        fn num<T: std::str::FromStr>(what: &str, raw: String) -> Result<T, String>
        where
            T::Err: std::fmt::Display,
        {
            raw.parse().map_err(|e| format!("bad {what}: {e}"))
        }
        match arg.as_str() {
            "--resctrl" => resctrl_root = Some(PathBuf::from(value("--resctrl")?)),
            "--telemetry" => telemetry_path = Some(PathBuf::from(value("--telemetry")?)),
            "--domains" => domains = Some(parse_domains(&value("--domains")?)?),
            "--interval-ms" => {
                interval = Duration::from_millis(num("--interval-ms", value("--interval-ms")?)?);
            }
            "--ticks" => max_ticks = Some(num("--ticks", value("--ticks")?)?),
            "--max-performance" => dcat = DcatConfig::max_performance(),
            "--retry-attempts" => {
                resilience.retry.max_attempts =
                    num("--retry-attempts", value("--retry-attempts")?)?;
            }
            "--retry-backoff-ms" => {
                resilience.retry.backoff =
                    Duration::from_millis(num("--retry-backoff-ms", value("--retry-backoff-ms")?)?);
            }
            "--quarantine-after" => {
                resilience.quarantine_after =
                    num("--quarantine-after", value("--quarantine-after")?)?;
            }
            "--counter-width-bits" => {
                resilience.counter_width_bits =
                    num("--counter-width-bits", value("--counter-width-bits")?)?;
            }
            "--fault-seed" => fault_seed = Some(num("--fault-seed", value("--fault-seed")?)?),
            "--fault-rate" => fault_rate = num("--fault-rate", value("--fault-rate")?)?,
            "--fault-ticks" => fault_ticks = Some(num("--fault-ticks", value("--fault-ticks")?)?),
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown argument {other:?}\n{}", usage())),
        }
    }
    let fault_plan = match fault_seed {
        Some(seed) => {
            let ticks = fault_ticks
                .or(max_ticks)
                .ok_or("--fault-seed needs --fault-ticks or --ticks")?;
            Some(FaultPlan::random(seed, ticks, fault_rate))
        }
        None => None,
    };
    Ok(DaemonConfig {
        resctrl_root: resctrl_root.ok_or_else(|| format!("--resctrl is required\n{}", usage()))?,
        telemetry_path: telemetry_path
            .ok_or_else(|| format!("--telemetry is required\n{}", usage()))?,
        domains: domains.ok_or_else(|| format!("--domains is required\n{}", usage()))?,
        dcat,
        interval,
        max_ticks,
        resilience,
        fault_plan,
    })
}

fn main() -> ExitCode {
    let cfg = match parse_args() {
        Ok(cfg) => cfg,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let result = run_daemon_with(&cfg, |obs| {
        for event in obs.events {
            eprintln!("tick={} {event}", obs.tick);
        }
    });
    match result {
        Ok(reports) => {
            for r in reports {
                println!(
                    "{}: {} ways, class {}, ipc {:.3}",
                    r.name, r.ways, r.class, r.ipc
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("dcatd: {e}");
            ExitCode::FAILURE
        }
    }
}
