//! dcatd — the dCat daemon.
//!
//! Usage:
//!
//! ```text
//! dcatd --resctrl <root> --telemetry <file> --domains <name:cores:ways;...>
//!       [--interval-ms <n>] [--ticks <n>] [--max-performance]
//!       [--retry-attempts <n>] [--retry-backoff-ms <n>] [--quarantine-after <n>]
//!       [--counter-width-bits <n>]
//!       [--fault-seed <n> --fault-rate <p> --fault-ticks <n>]
//!       [--metrics-out <path>] [--flight-out <path>] [--flight-ticks <n>]
//!       [--frames-out <path>]
//! ```
//!
//! Example against a fixture tree (no hardware needed):
//!
//! ```text
//! dcatd --resctrl /tmp/resctrl --telemetry /tmp/counters.csv \
//!       --domains "web:0-1:4;db:2-3:6" --interval-ms 1000
//! ```
//!
//! On CAT hardware, point `--resctrl` at `/sys/fs/resctrl` and refresh the
//! telemetry file from an MSR/perf sampler once per interval.
//!
//! Structured per-tick events (retries, degraded ticks, counter wraps,
//! quarantines) are printed to stderr as `tick=<n> event=<name> ...` lines.
//! The `--fault-*` flags inject a seeded random fault schedule into both
//! the telemetry feed and the resctrl backend — for resilience drills
//! against fixture trees, not for production mounts.
//!
//! `--metrics-out` writes the daemon's final metrics snapshot on exit
//! (Prometheus text, or JSONL when the path ends in `.jsonl`);
//! `--flight-out` writes the flight-recorder dump (last `--flight-ticks`
//! ticks of spans and events, JSONL). `--frames-out` appends one
//! `dcat-frames/v1` record per tick as the daemon runs, so
//! `dcat-top --follow <path>` can watch the run live. All three validate
//! with `obs-dump --check`.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use dcat::daemon::{parse_domains, run_daemon_observed, DaemonConfig, ResiliencePolicy};
use dcat::DcatConfig;
use dcat_obs::{FileSink, MetricsSink};
use resctrl::fault::FaultPlan;

fn usage() -> &'static str {
    "usage: dcatd --resctrl <root> --telemetry <file> \
     --domains <name:cores:ways;...> [--interval-ms <n>] [--ticks <n>] \
     [--max-performance] [--retry-attempts <n>] [--retry-backoff-ms <n>] \
     [--quarantine-after <n>] [--counter-width-bits <n>] \
     [--fault-seed <n> --fault-rate <p> --fault-ticks <n>] \
     [--metrics-out <path>] [--flight-out <path>] [--flight-ticks <n>] \
     [--frames-out <path>]"
}

struct ObsPaths {
    metrics_out: Option<PathBuf>,
    flight_out: Option<PathBuf>,
    frames_out: Option<PathBuf>,
}

fn parse_args() -> Result<(DaemonConfig, ObsPaths), String> {
    let mut resctrl_root: Option<PathBuf> = None;
    let mut telemetry_path: Option<PathBuf> = None;
    let mut domains = None;
    let mut interval = Duration::from_secs(1);
    let mut max_ticks = None;
    let mut dcat = DcatConfig::default();
    let mut resilience = ResiliencePolicy::default();
    let mut fault_seed: Option<u64> = None;
    let mut fault_rate = 0.1f64;
    let mut fault_ticks: Option<u64> = None;
    let mut obs = dcat::daemon::ObsOptions::default();
    let mut metrics_out: Option<PathBuf> = None;
    let mut flight_out: Option<PathBuf> = None;
    let mut frames_out: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| -> Result<String, String> {
            args.next()
                .ok_or_else(|| format!("{what} requires a value"))
        };
        fn num<T: std::str::FromStr>(what: &str, raw: String) -> Result<T, String>
        where
            T::Err: std::fmt::Display,
        {
            raw.parse().map_err(|e| format!("bad {what}: {e}"))
        }
        match arg.as_str() {
            "--resctrl" => resctrl_root = Some(PathBuf::from(value("--resctrl")?)),
            "--telemetry" => telemetry_path = Some(PathBuf::from(value("--telemetry")?)),
            "--domains" => domains = Some(parse_domains(&value("--domains")?)?),
            "--interval-ms" => {
                interval = Duration::from_millis(num("--interval-ms", value("--interval-ms")?)?);
            }
            "--ticks" => max_ticks = Some(num("--ticks", value("--ticks")?)?),
            "--max-performance" => dcat = DcatConfig::max_performance(),
            "--retry-attempts" => {
                resilience.retry.max_attempts =
                    num("--retry-attempts", value("--retry-attempts")?)?;
            }
            "--retry-backoff-ms" => {
                resilience.retry.backoff =
                    Duration::from_millis(num("--retry-backoff-ms", value("--retry-backoff-ms")?)?);
            }
            "--quarantine-after" => {
                resilience.quarantine_after =
                    num("--quarantine-after", value("--quarantine-after")?)?;
            }
            "--counter-width-bits" => {
                resilience.counter_width_bits =
                    num("--counter-width-bits", value("--counter-width-bits")?)?;
            }
            "--fault-seed" => fault_seed = Some(num("--fault-seed", value("--fault-seed")?)?),
            "--fault-rate" => fault_rate = num("--fault-rate", value("--fault-rate")?)?,
            "--fault-ticks" => fault_ticks = Some(num("--fault-ticks", value("--fault-ticks")?)?),
            "--metrics-out" => metrics_out = Some(PathBuf::from(value("--metrics-out")?)),
            "--flight-out" => flight_out = Some(PathBuf::from(value("--flight-out")?)),
            "--frames-out" => frames_out = Some(PathBuf::from(value("--frames-out")?)),
            "--flight-ticks" => {
                obs.flight_recorder_ticks = num("--flight-ticks", value("--flight-ticks")?)?;
            }
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown argument {other:?}\n{}", usage())),
        }
    }
    let fault_plan = match fault_seed {
        Some(seed) => {
            let ticks = fault_ticks
                .or(max_ticks)
                .ok_or("--fault-seed needs --fault-ticks or --ticks")?;
            Some(FaultPlan::random(seed, ticks, fault_rate))
        }
        None => None,
    };
    let cfg = DaemonConfig {
        resctrl_root: resctrl_root.ok_or_else(|| format!("--resctrl is required\n{}", usage()))?,
        telemetry_path: telemetry_path
            .ok_or_else(|| format!("--telemetry is required\n{}", usage()))?,
        domains: domains.ok_or_else(|| format!("--domains is required\n{}", usage()))?,
        dcat,
        interval,
        max_ticks,
        resilience,
        fault_plan,
        obs,
    };
    Ok((
        cfg,
        ObsPaths {
            metrics_out,
            flight_out,
            frames_out,
        },
    ))
}

fn main() -> ExitCode {
    let (cfg, paths) = match parse_args() {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    // Frames stream live: the header goes out before the first tick so
    // `dcat-top --follow` sees a valid stream immediately, and each tick's
    // line is flushed as it is produced.
    let mut frames_sink = match paths.frames_out.as_deref() {
        Some(path) => {
            let mut writer = dcat_obs::FrameWriter::new("dcatd");
            let mut file = match std::fs::File::create(path) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("dcatd: creating {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            };
            if let Err(e) = std::io::Write::write_all(&mut file, writer.header().as_bytes()) {
                eprintln!("dcatd: writing {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            writer.clear_buffer();
            Some((file, writer))
        }
        None => None,
    };
    let domain_count = cfg.domains.len() as u32;
    let result = run_daemon_observed(&cfg, |obs| {
        for event in obs.events {
            eprintln!("tick={} {event}", obs.tick);
        }
        if let Some((file, writer)) = frames_sink.as_mut() {
            let ext = dcat_obs::PolicyExt {
                cos: domain_count,
                ..dcat_obs::PolicyExt::default()
            };
            let line = writer.push(dcat::frame_from_observation(obs, "dcat", ext));
            writer.clear_buffer();
            let written = std::io::Write::write_all(file, line.as_bytes())
                .and_then(|()| std::io::Write::flush(file));
            if let Err(e) = written {
                eprintln!("dcatd: writing frames: {e}");
            }
        }
        // An anomaly tick carries a flight dump; persist it immediately so
        // the window survives even if the daemon is killed later.
        if let (Some(dump), Some(path)) = (obs.flight_dump, paths.flight_out.as_deref()) {
            if let Err(e) = dcat_obs::write_text(path, dump) {
                eprintln!("dcatd: writing {}: {e}", path.display());
            }
        }
    });
    match result {
        Ok(outcome) => {
            for r in &outcome.reports {
                println!(
                    "{}: {} ways, class {}, ipc {:.3}",
                    r.name, r.ways, r.class, r.ipc
                );
            }
            if let Some(path) = paths.metrics_out.as_deref() {
                if let Err(e) = FileSink::new(path).export(&outcome.metrics) {
                    eprintln!("dcatd: writing {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            }
            if let Some(path) = paths.flight_out.as_deref() {
                if let Err(e) = dcat_obs::write_text(path, &outcome.flight_dump) {
                    eprintln!("dcatd: writing {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("dcatd: {e}");
            ExitCode::FAILURE
        }
    }
}
