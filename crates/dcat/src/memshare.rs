//! Memshare-style multi-tenant share accounting (arXiv 1610.08129).
//!
//! Memshare's model, transplanted from a key-value cache onto CAT ways:
//! every tenant holds **shares** (here: its reserved way count) that
//! define a guaranteed *entitlement* of the LLC. Tenants that are not
//! using their entitlement — idle cores, compute-bound phases — lend the
//! surplus into a common pool, and tenants whose miss rate shows demand
//! borrow from that pool in proportion to their shares. A running
//! **credit** ledger (way-ticks lent minus borrowed) breaks ties when
//! the pool is oversubscribed, so a tenant that donated capacity in the
//! past is first in line when it needs capacity back — the reciprocity
//! that distinguishes share accounting from plain work conservation.
//!
//! COS pressure is handled by *coalescing*: tenants are grouped by their
//! granted way count and each group shares one COS sized to the sum of
//! its members' grants (members contend within the pooled partition,
//! like Memshare tenants inside one memory arena). The number of
//! programmed COS is bounded by [`MemshareConfig::max_partitions`]
//! regardless of tenant count.
//!
//! Deterministic throughout: integer entitlements via largest-remainder
//! apportionment, credit ties broken on domain index, `BTreeMap` for
//! grouping — no RNG, no wall clock, no hash-order iteration.

use std::collections::BTreeMap;

use perf_events::{CounterSnapshot, IntervalMetrics};
use resctrl::{CacheController, Cbm, CosId, LayoutPlanner, ResctrlError};

use crate::baselines::MetricsTracker;
use crate::controller::{DomainReport, WorkloadHandle};
use crate::policy::CachePolicy;
use crate::state::WorkloadClass;

/// Tuning knobs for [`MemsharePolicy`].
#[derive(Debug, Clone, Copy)]
pub struct MemshareConfig {
    /// Way floor any active tenant keeps even while lending.
    pub min_ways: u32,
    /// Interval miss rate above which a tenant is *needy* (borrows).
    pub needy_miss_rate: f64,
    /// `llc_ref / instruction` below which a tenant is *idle* (lends
    /// everything above the floor).
    pub idle_intensity: f64,
    /// Upper bound on simultaneously programmed COS. Clamped to the
    /// hardware's `num_closids - 1`.
    pub max_partitions: u32,
}

impl Default for MemshareConfig {
    fn default() -> Self {
        MemshareConfig {
            min_ways: 1,
            needy_miss_rate: 0.05,
            idle_intensity: 1e-3,
            max_partitions: 8,
        }
    }
}

/// A tenant's demand classification for one tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Demand {
    /// Below the intensity floor: lends everything above `min_ways`.
    Idle,
    /// Misses above the needy threshold: borrows from the pool.
    Needy,
    /// In between: runs at its entitlement.
    Content,
}

/// Memshare-style share-accounting policy behind [`CachePolicy`].
pub struct MemsharePolicy {
    cfg: MemshareConfig,
    tracker: MetricsTracker,
    /// Shares per domain (its reserved way count, floored at 1).
    shares: Vec<u64>,
    /// Integer way entitlement per domain (sums to `cbm_len`).
    entitlement: Vec<u32>,
    /// Cumulative way-ticks lent (+) or borrowed (−).
    credit: Vec<i64>,
    /// This tick's granted ways per domain.
    granted: Vec<u32>,
    /// Last programmed grouping, to skip redundant reprogramming.
    last_groups: Vec<(u32, Vec<usize>)>,
    /// Last programmed mask per domain (group members share one).
    domain_masks: Vec<Option<u64>>,
    cbm_len: u32,
}

impl MemsharePolicy {
    /// Creates the policy; entitlements are apportioned from reserved
    /// ways and the initial (everyone content) layout is programmed.
    pub fn new(
        handles: Vec<WorkloadHandle>,
        cat: &mut dyn CacheController,
        mut cfg: MemshareConfig,
    ) -> Result<Self, ResctrlError> {
        let caps = cat.capabilities();
        let hw_partitions = caps.num_closids.saturating_sub(1).max(1);
        cfg.max_partitions = cfg.max_partitions.clamp(1, hw_partitions);
        cfg.min_ways = cfg.min_ways.max(caps.min_cbm_bits).max(1);
        let shares: Vec<u64> = handles
            .iter()
            .map(|h| u64::from(h.reserved_ways.max(1)))
            .collect();
        let entitlement = apportion(caps.cbm_len, cfg.min_ways, &shares);
        let n = handles.len();
        let mut policy = MemsharePolicy {
            cfg,
            tracker: MetricsTracker::new(handles),
            shares,
            granted: entitlement.clone(),
            entitlement,
            credit: vec![0; n],
            last_groups: Vec::new(),
            domain_masks: vec![None; n],
            cbm_len: caps.cbm_len,
        };
        policy.program(cat)?;
        Ok(policy)
    }

    /// Shares per domain (reserved ways, floored at 1) — the weights the
    /// entitlements were apportioned from.
    pub fn shares(&self) -> &[u64] {
        &self.shares
    }

    /// Classifies each domain's demand from this interval's metrics.
    fn classify(&self, metrics: &[IntervalMetrics]) -> Vec<Demand> {
        metrics
            .iter()
            .map(|m| {
                if m.instructions == 0 {
                    return Demand::Idle;
                }
                let intensity = m.llc_ref as f64 / m.instructions as f64;
                if intensity < self.cfg.idle_intensity {
                    Demand::Idle
                } else if m.llc_miss_rate > self.cfg.needy_miss_rate {
                    Demand::Needy
                } else {
                    Demand::Content
                }
            })
            .collect()
    }

    /// Runs one round of share accounting: idle tenants lend down to the
    /// floor, needy tenants borrow the pool in credit order, and the
    /// ledger advances by each tenant's net position.
    fn settle(&mut self, demand: &[Demand]) {
        let n = demand.len().min(self.entitlement.len());
        let mut pool = 0u32;
        for i in 0..n {
            let e = self.entitlement.get(i).copied().unwrap_or(0);
            let g = match demand.get(i) {
                Some(Demand::Idle) => {
                    let kept = self.cfg.min_ways.min(e);
                    pool += e - kept;
                    kept
                }
                _ => e,
            };
            if let Some(slot) = self.granted.get_mut(i) {
                *slot = g;
            }
        }
        // Borrowers in credit order (past lenders first), index-stable.
        let mut borrowers: Vec<usize> = Vec::with_capacity(n);
        for i in 0..n {
            if demand.get(i) == Some(&Demand::Needy) {
                borrowers.push(i);
            }
        }
        borrowers.sort_by(|&a, &b| self.credit.get(b).cmp(&self.credit.get(a)).then(a.cmp(&b)));
        while pool > 0 && !borrowers.is_empty() {
            let mut gave = false;
            for &i in &borrowers {
                if pool == 0 {
                    break;
                }
                if let Some(slot) = self.granted.get_mut(i) {
                    *slot += 1;
                    pool -= 1;
                    gave = true;
                }
            }
            if !gave {
                break;
            }
        }
        // Ledger: positive when running under entitlement (lending).
        for i in 0..n {
            let e = i64::from(self.entitlement.get(i).copied().unwrap_or(0));
            let g = i64::from(self.granted.get(i).copied().unwrap_or(0));
            if let Some(c) = self.credit.get_mut(i) {
                *c = c.saturating_add(e - g);
            }
        }
    }

    /// Groups equal grants into shared COS and programs the layout.
    /// Groups beyond the COS budget are merged smallest-first.
    fn program(&mut self, cat: &mut dyn CacheController) -> Result<(), ResctrlError> {
        let mut by_grant: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
        for (i, &g) in self.granted.iter().enumerate() {
            by_grant.entry(g).or_default().push(i);
        }
        let mut groups: Vec<(u32, Vec<usize>)> = by_grant.into_iter().collect();
        // Merge the two smallest-grant groups until the COS budget and
        // the per-group way floor both fit; the merged group keeps the
        // larger grant per member. This biases merging toward lenders,
        // whose partitions are interchangeable.
        while groups.len() >= 2
            && (groups.len() > self.cfg.max_partitions as usize
                || groups.len() as u32 * self.cfg.min_ways > self.cbm_len)
        {
            let (_, members0) = groups.remove(0);
            if let Some((merged_grant, members1)) = groups.first_mut() {
                let merged_grant = *merged_grant;
                for &m in &members0 {
                    if let Some(slot) = self.granted.get_mut(m) {
                        *slot = merged_grant;
                    }
                }
                members1.extend(members0);
                members1.sort_unstable();
            }
        }
        if groups == self.last_groups {
            return Ok(());
        }
        // One COS per group, sized to the members' pooled grant but
        // never past the cache.
        let mut counts: Vec<u32> = Vec::with_capacity(groups.len());
        let mut budget = self.cbm_len;
        for (grant, members) in &groups {
            let want = grant
                .saturating_mul(members.len() as u32)
                .max(self.cfg.min_ways);
            let take = want.min(budget.saturating_sub(
                (groups.len() as u32 - counts.len() as u32 - 1) * self.cfg.min_ways,
            ));
            let take = take.max(self.cfg.min_ways.min(budget));
            counts.push(take);
            budget = budget.saturating_sub(take);
        }
        let layout = LayoutPlanner::new(self.cbm_len).layout(&counts)?;
        for (j, (_, members)) in groups.iter().enumerate() {
            let cos = CosId((j + 1) as u8);
            let cbm = layout
                .get(j)
                .copied()
                .unwrap_or_else(|| Cbm::full(self.cbm_len));
            cat.program_cos(cos, cbm)?;
            for &i in members {
                if let Some(slot) = self.domain_masks.get_mut(i) {
                    *slot = Some(u64::from(cbm.0));
                }
                if let Some(handle) = self.tracker.handles().get(i) {
                    for &core in &handle.cores {
                        cat.assign_core(core, cos)?;
                    }
                }
            }
        }
        self.last_groups = groups;
        Ok(())
    }

    /// The report class for one domain this tick.
    fn class_of(&self, i: usize, demand: &[Demand]) -> WorkloadClass {
        let e = self.entitlement.get(i).copied().unwrap_or(0);
        let g = self.granted.get(i).copied().unwrap_or(0);
        match demand.get(i) {
            Some(Demand::Idle) if g < e => WorkloadClass::Donor,
            Some(Demand::Needy) if g > e => WorkloadClass::Receiver,
            Some(_) => WorkloadClass::Keeper,
            None => WorkloadClass::Unknown,
        }
    }
}

/// Integer largest-remainder apportionment of `total` ways by `shares`,
/// with a `floor` per holder. Deterministic: remainders tie-break on
/// index. Degenerate cases (no shares, floors exceeding the cache) fall
/// back to handing everyone the floor clamped to what is left.
fn apportion(total: u32, floor: u32, shares: &[u64]) -> Vec<u32> {
    let n = shares.len();
    if n == 0 {
        return Vec::new();
    }
    let mut out = vec![0u32; n];
    let mut remaining = total;
    for slot in out.iter_mut() {
        let grant = floor.min(remaining);
        *slot = grant;
        remaining -= grant;
    }
    let share_sum: u64 = shares.iter().sum();
    if share_sum == 0 {
        return out;
    }
    let mut granted = 0u32;
    let mut remainders: Vec<(u64, usize)> = Vec::with_capacity(n);
    for (i, &s) in shares.iter().enumerate() {
        let exact = u64::from(remaining) * s;
        let extra = exact.checked_div(share_sum).unwrap_or(0) as u32;
        if let Some(slot) = out.get_mut(i) {
            *slot += extra;
        }
        granted += extra;
        remainders.push((exact.checked_rem(share_sum).unwrap_or(0), i));
    }
    remainders.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut leftover = remaining - granted;
    for &(_, i) in &remainders {
        if leftover == 0 {
            break;
        }
        if let Some(slot) = out.get_mut(i) {
            *slot += 1;
            leftover -= 1;
        }
    }
    out
}

impl CachePolicy for MemsharePolicy {
    fn name(&self) -> &'static str {
        "memshare"
    }

    fn tick(
        &mut self,
        snapshots: &[CounterSnapshot],
        cat: &mut dyn CacheController,
    ) -> Result<Vec<DomainReport>, ResctrlError> {
        let metrics = self.tracker.advance(snapshots);
        let demand = self.classify(&metrics);
        self.settle(&demand);
        self.program(cat)?;
        let reports = metrics
            .iter()
            .enumerate()
            .map(|(i, m)| {
                let ways = self.granted.get(i).copied().unwrap_or(0);
                let cbm = self.domain_masks.get(i).copied().flatten();
                self.tracker
                    .report(i, m, ways, self.class_of(i, &demand), cbm)
            })
            .collect();
        Ok(reports)
    }

    fn frame_ext(&self) -> dcat_obs::PolicyExt {
        let lent: u32 = self
            .entitlement
            .iter()
            .zip(&self.granted)
            .map(|(&e, &g)| e.saturating_sub(g))
            .sum();
        let credit_min = self.credit.iter().copied().min().unwrap_or(0);
        let credit_max = self.credit.iter().copied().max().unwrap_or(0);
        dcat_obs::PolicyExt {
            cos: self.last_groups.len() as u32,
            lfoc: None,
            memshare: Some(dcat_obs::MemshareExt {
                lent,
                credit_min,
                credit_max,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resctrl::{CatCapabilities, InMemoryController};

    fn snapshot(ins: u64, llc_ref: u64, llc_miss: u64) -> CounterSnapshot {
        CounterSnapshot {
            l1_ref: ins / 3,
            llc_ref,
            llc_miss,
            ret_ins: ins,
            cycles: ins,
        }
    }

    fn accumulate(t: u64, per: CounterSnapshot) -> CounterSnapshot {
        CounterSnapshot {
            l1_ref: per.l1_ref * t,
            llc_ref: per.llc_ref * t,
            llc_miss: per.llc_miss * t,
            ret_ins: per.ret_ins * t,
            cycles: per.cycles * t,
        }
    }

    #[test]
    fn idle_tenants_lend_and_needy_tenants_borrow() {
        let mut cat = InMemoryController::new(CatCapabilities::with_ways(20), 2);
        let handles = vec![
            WorkloadHandle::new("idle", vec![0], 8),
            WorkloadHandle::new("needy", vec![1], 8),
        ];
        let mut p = MemsharePolicy::new(handles, &mut cat, MemshareConfig::default()).unwrap();
        let mut last = Vec::new();
        for t in 1..=4u64 {
            let snaps = vec![
                accumulate(t, snapshot(1000, 0, 0)),
                accumulate(t, snapshot(1000, 400, 200)),
            ];
            last = p.tick(&snaps, &mut cat).unwrap();
        }
        assert_eq!(last[0].class, WorkloadClass::Donor);
        assert_eq!(last[1].class, WorkloadClass::Receiver);
        assert!(last[0].ways < last[1].ways, "{last:?}");
        assert_eq!(
            last[1].ways, 19,
            "borrower takes the whole lent surplus: {last:?}"
        );
        assert!(!cat.has_overlapping_active_masks());
    }

    #[test]
    fn credit_breaks_ties_toward_past_lenders() {
        let mut cat = InMemoryController::new(CatCapabilities::with_ways(9), 4);
        // Entitlements come out [4, 2, 3]: when `b` lends its single
        // surplus way, exactly one pooled way exists and the ledger must
        // decide who gets it.
        let handles = vec![
            WorkloadHandle::new("a", vec![0], 4),
            WorkloadHandle::new("b", vec![1], 1),
            WorkloadHandle::new("c", vec![2], 4),
        ];
        let mut p = MemsharePolicy::new(handles, &mut cat, MemshareConfig::default()).unwrap();
        // Phase 1: `a` idles (lends), b/c needy (borrow).
        for t in 1..=3u64 {
            p.tick(
                &[
                    accumulate(t, snapshot(1000, 0, 0)),
                    accumulate(t, snapshot(1000, 400, 100)),
                    accumulate(t, snapshot(1000, 400, 100)),
                ],
                &mut cat,
            )
            .unwrap();
        }
        // Phase 2: everyone needy; the lone surplus way must go to `a`,
        // whose ledger is positive from phase 1 — but there is no pool
        // now, so grants return to entitlements.
        let base = 4u64;
        let r = p
            .tick(
                &[
                    accumulate(base, snapshot(1000, 400, 100)),
                    accumulate(base, snapshot(1000, 400, 100)),
                    accumulate(base, snapshot(1000, 400, 100)),
                ],
                &mut cat,
            )
            .unwrap();
        assert_eq!(r.iter().map(|d| d.ways).sum::<u32>(), 9);
        // Phase 3: `b` idles; between equally-needy a and c, credit puts
        // `a` (the past lender) first for the odd lent way.
        let r = p
            .tick(
                &[
                    accumulate(base + 1, snapshot(1000, 400, 100)),
                    accumulate(base + 1, snapshot(1000, 0, 0)),
                    accumulate(base + 1, snapshot(1000, 400, 100)),
                ],
                &mut cat,
            )
            .unwrap();
        assert!(
            r[0].ways > r[2].ways,
            "past lender must be first in line for the lone pooled way: {r:?}"
        );
        assert_eq!(r[1].class, WorkloadClass::Donor);
    }

    #[test]
    fn many_tenants_fit_the_cos_budget() {
        let n = 32u32;
        let mut cat = InMemoryController::new(CatCapabilities::with_ways(20), n);
        let handles: Vec<WorkloadHandle> = (0..n)
            .map(|i| WorkloadHandle::new(format!("t{i}"), vec![i], 1))
            .collect();
        let mut p = MemsharePolicy::new(handles, &mut cat, MemshareConfig::default()).unwrap();
        for t in 1..=4u64 {
            let snaps: Vec<CounterSnapshot> = (0..n)
                .map(|i| match i % 3 {
                    0 => accumulate(t, snapshot(1000, 0, 0)),
                    1 => accumulate(t, snapshot(1000, 300, 5)),
                    _ => accumulate(t, snapshot(1000, 300, 120)),
                })
                .collect();
            let r = p.tick(&snaps, &mut cat).unwrap();
            assert_eq!(r.len(), n as usize);
        }
        let distinct: std::collections::BTreeSet<u8> = (0..n)
            .filter_map(|c| cat.core_cos(c).ok().map(|cos| cos.0))
            .collect();
        assert!(
            distinct.len() <= MemshareConfig::default().max_partitions as usize,
            "{distinct:?}"
        );
        assert!(!cat.has_overlapping_active_masks());
        assert_eq!(p.name(), "memshare");
    }

    #[test]
    fn accounting_is_deterministic() {
        let run = || {
            let n = 10u32;
            let mut cat = InMemoryController::new(CatCapabilities::with_ways(20), n);
            let handles: Vec<WorkloadHandle> = (0..n)
                .map(|i| WorkloadHandle::new(format!("t{i}"), vec![i], 1 + i % 3))
                .collect();
            let mut p = MemsharePolicy::new(handles, &mut cat, MemshareConfig::default()).unwrap();
            let mut out = Vec::new();
            for t in 1..=6u64 {
                let snaps: Vec<CounterSnapshot> = (0..n)
                    .map(|i| {
                        accumulate(
                            t,
                            snapshot(1000, 100 * u64::from(i % 4), 30 * u64::from(i % 3)),
                        )
                    })
                    .collect();
                for r in p.tick(&snaps, &mut cat).unwrap() {
                    out.push(format!("{}:{}:{:?}", r.name, r.ways, r.class));
                }
            }
            (out, cat.log.clone())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn apportionment_is_exact() {
        let e = apportion(20, 1, &[3, 3, 3]);
        assert_eq!(e.iter().sum::<u32>(), 20);
        let e = apportion(20, 1, &[1, 2, 3, 4]);
        assert_eq!(e.iter().sum::<u32>(), 20);
        assert!(e.windows(2).all(|w| w[0] <= w[1]));
        assert!(apportion(4, 1, &[5, 5, 5, 5, 5, 5]).iter().all(|&w| w <= 1));
    }
}
