//! The [`CachePolicy`] trait: a common face for dCat and the baselines.
//!
//! The paper compares three configurations throughout its evaluation:
//! an unmanaged **shared cache**, **static CAT** partitioning at the
//! reserved sizes, and **dCat**. Experiment harnesses drive all three
//! through this trait so scenarios are written once.

use perf_events::CounterSnapshot;
use resctrl::{CacheController, ResctrlError};

use crate::controller::DomainReport;

/// A cache-management policy ticked once per interval.
pub trait CachePolicy {
    /// Short policy name for reports ("shared", "static-cat", "dcat").
    fn name(&self) -> &'static str;

    /// Observes the interval's counters and (possibly) reprograms CAT.
    fn tick(
        &mut self,
        snapshots: &[CounterSnapshot],
        cat: &mut dyn CacheController,
    ) -> Result<Vec<DomainReport>, ResctrlError>;

    /// [`Self::tick`] with pipeline-stage tracing. Policies without
    /// internal stages (the shared/static baselines) ignore the tracer;
    /// dCat records one span per Figure-4 step.
    fn tick_traced(
        &mut self,
        snapshots: &[CounterSnapshot],
        cat: &mut dyn CacheController,
        tracer: &mut dcat_obs::Tracer,
    ) -> Result<Vec<DomainReport>, ResctrlError> {
        let _ = tracer;
        self.tick(snapshots, cat)
    }

    /// Policy decision summary for the current tick's frame
    /// (`dcat-frames/v1`): COS in use, plus the LFOC clustering / Memshare
    /// ledger when those policies are active. The default reports no COS
    /// bookkeeping, which is right for the shared baseline.
    fn frame_ext(&self) -> dcat_obs::PolicyExt {
        dcat_obs::PolicyExt::default()
    }
}

impl CachePolicy for crate::DcatController {
    fn name(&self) -> &'static str {
        "dcat"
    }

    fn tick(
        &mut self,
        snapshots: &[CounterSnapshot],
        cat: &mut dyn CacheController,
    ) -> Result<Vec<DomainReport>, ResctrlError> {
        // The inherent method; path syntax picks the inherent impl.
        crate::DcatController::tick(self, snapshots, cat)
    }

    fn tick_traced(
        &mut self,
        snapshots: &[CounterSnapshot],
        cat: &mut dyn CacheController,
        tracer: &mut dcat_obs::Tracer,
    ) -> Result<Vec<DomainReport>, ResctrlError> {
        let valid = vec![true; snapshots.len()];
        self.tick_observed(snapshots, &valid, cat, tracer)
    }

    fn frame_ext(&self) -> dcat_obs::PolicyExt {
        dcat_obs::PolicyExt {
            // dCat pins one COS per domain.
            cos: self.domain_count() as u32,
            ..dcat_obs::PolicyExt::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DcatConfig, DcatController, WorkloadHandle};
    use resctrl::{CatCapabilities, InMemoryController};

    #[test]
    fn dcat_is_usable_through_the_trait() {
        let mut cat = InMemoryController::new(CatCapabilities::with_ways(20), 2);
        let handles = vec![WorkloadHandle::new("w", vec![0, 1], 4)];
        let mut ctl = DcatController::new(DcatConfig::default(), handles, &mut cat).unwrap();
        let policy: &mut dyn CachePolicy = &mut ctl;
        assert_eq!(policy.name(), "dcat");
        let reports = policy
            .tick(&[CounterSnapshot::default()], &mut cat)
            .unwrap();
        assert_eq!(reports.len(), 1);
    }

    #[test]
    fn dcat_tick_traced_records_one_span_per_pipeline_stage() {
        let mut cat = InMemoryController::new(CatCapabilities::with_ways(20), 2);
        let handles = vec![WorkloadHandle::new("w", vec![0, 1], 4)];
        let mut ctl = DcatController::new(DcatConfig::default(), handles, &mut cat).unwrap();
        let mut tracer = dcat_obs::Tracer::new();
        let policy: &mut dyn CachePolicy = &mut ctl;
        policy
            .tick_traced(&[CounterSnapshot::default()], &mut cat, &mut tracer)
            .unwrap();
        let names: Vec<_> = tracer.drain().iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            [
                "collect",
                "phase_detect",
                "baseline",
                "categorize",
                "allocate",
                "apply"
            ]
        );
    }
}
