//! The dCat controller: the five-step loop of the paper's Figure 4.

use std::collections::BTreeMap;

use dcat_obs::Tracer;
use perf_events::{CounterSnapshot, IntervalMetrics};
use resctrl::{CacheController, Cbm, CosId, LayoutPlanner, ResctrlError};

use crate::config::{AllocationPolicy, DcatConfig};
use crate::perf_table::{max_performance_split, PerformanceTable};
use crate::phase::{PhaseChange, PhaseDetector};
use crate::state::WorkloadClass;
use crate::transitions;

/// Static description of one managed workload (a tenant's VM/container).
#[derive(Debug, Clone)]
pub struct WorkloadHandle {
    /// Display name.
    pub name: String,
    /// Cores owned exclusively by the workload.
    pub cores: Vec<u32>,
    /// Contracted LLC ways — the baseline allocation.
    pub reserved_ways: u32,
}

impl WorkloadHandle {
    /// Creates a handle.
    ///
    /// # Panics
    ///
    /// Panics if the workload has no cores or zero reserved ways.
    pub fn new(name: impl Into<String>, cores: Vec<u32>, reserved_ways: u32) -> Self {
        assert!(!cores.is_empty(), "workload needs at least one core");
        assert!(reserved_ways >= 1, "reserved ways must be at least 1");
        WorkloadHandle {
            name: name.into(),
            cores,
            reserved_ways,
        }
    }
}

/// What dCat decided about one workload this interval.
#[derive(Debug, Clone)]
pub struct DomainReport {
    /// Workload name.
    pub name: String,
    /// Class after this interval's categorization.
    pub class: WorkloadClass,
    /// Ways granted for the *next* interval.
    pub ways: u32,
    /// Raw capacity bitmask currently programmed for the domain, when the
    /// policy tracks one (the frame stream renders it for operators).
    pub cbm: Option<u64>,
    /// IPC measured this interval.
    pub ipc: f64,
    /// IPC normalized to the phase baseline, if a baseline exists.
    pub norm_ipc: Option<f64>,
    /// LLC miss rate this interval.
    pub llc_miss_rate: f64,
    /// Whether a phase change was detected this interval.
    pub phase_changed: bool,
    /// The phase's baseline IPC, once established.
    pub baseline_ipc: Option<f64>,
    /// Whether this domain's interval was skipped (invalid telemetry):
    /// the metrics fields are zero filler, not measurements, and the
    /// allocation was held.
    pub skipped: bool,
}

/// How a Donor releases capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DonorMode {
    /// Idle / no LLC use: drop straight to the minimum.
    Fast,
    /// Uses the LLC but misses are negligible: release one way per
    /// interval until misses become non-trivial.
    Gradual,
}

struct Domain {
    handle: WorkloadHandle,
    cos: CosId,
    class: WorkloadClass,
    donor_mode: DonorMode,
    /// Currently programmed way count.
    ways: u32,
    /// Mask currently programmed (for churn-minimizing relayout).
    cbm: Option<Cbm>,
    last_snapshot: CounterSnapshot,
    detector: PhaseDetector,
    /// Active phase's table.
    table: PerformanceTable,
    /// Tables of previously seen phases, keyed by quantized signature.
    archived: BTreeMap<u64, PerformanceTable>,
    /// Whether the active table was restored from the archive (a recurring
    /// phase: jump straight to the preferred allocation).
    recurring: bool,
    baseline_ipc: Option<f64>,
    /// Waiting to measure the baseline at the reserved allocation.
    pending_baseline: bool,
    /// Intervals left before the last ways change is judged.
    settle: u32,
    /// IPC at the previous decision point, for improvement comparisons.
    prev_ipc: Option<f64>,
    /// Ways at the previous decision point.
    prev_ways: u32,
    /// The allocator could not grant a requested grow (pool empty).
    grow_denied: bool,
    /// An added way was observed to yield no meaningful IPC improvement
    /// (qualifies the workload for a Streaming verdict once growth stops).
    saw_no_improvement: bool,
    /// The workload was once misclassified Streaming and suffered below
    /// its baseline; it is pinned at its reserved allocation for the rest
    /// of the phase to honor the baseline guarantee without oscillating.
    capped: bool,
    /// Way count at which a growth probe last stalled (no improvement).
    /// Keeper does not re-enter Unknown at this size, preventing an
    /// endless probe-stall-probe cycle on workloads with heavy miss tails.
    stalled_at: Option<u32>,
    /// Smallest allocation donation may reach this phase. Raised when a
    /// donated-down workload fell below its baseline (it provably needs
    /// more than it had), preventing a donate/suffer/reclaim loop whose
    /// every iteration pays a cold-start.
    donor_floor: u32,
}

impl Domain {
    fn reserved(&self) -> u32 {
        self.handle.reserved_ways
    }
}

/// Longest contiguous run of free ways within the low `total_ways` ways
/// of `occupied`, as a CBM; `None` when every way is occupied.
fn longest_free_run(occupied: Cbm, total_ways: u32) -> Option<Cbm> {
    let mut best: Option<(u32, u32)> = None; // (start, len)
    let mut run_start = 0;
    let mut run_len = 0;
    for way in 0..total_ways {
        if !occupied.contains_way(way) {
            if run_len == 0 {
                run_start = way;
            }
            run_len += 1;
            if best.is_none_or(|(_, l)| run_len > l) {
                best = Some((run_start, run_len));
            }
        } else {
            run_len = 0;
        }
    }
    best.map(|(start, len)| Cbm::from_way_range(start, len))
}

/// The dynamic cache-allocation controller.
pub struct DcatController {
    config: DcatConfig,
    domains: Vec<Domain>,
    planner: LayoutPlanner,
    total_ways: u32,
    interval: u64,
}

impl DcatController {
    /// Creates the controller and programs the initial (reserved) static
    /// partitioning — the same state a static-CAT deployment would use.
    ///
    /// Domain `i` is bound to COS `i + 1` (COS 0 stays the default class
    /// for unmanaged cores).
    pub fn new(
        config: DcatConfig,
        handles: Vec<WorkloadHandle>,
        cat: &mut dyn CacheController,
    ) -> Result<Self, ResctrlError> {
        config
            .validate()
            .map_err(|e| ResctrlError::Parse(format!("invalid DcatConfig: {e}")))?;
        let caps = cat.capabilities();
        let total_ways = caps.cbm_len;
        if handles.len() + 1 > caps.num_closids as usize {
            return Err(ResctrlError::Parse(format!(
                "{} workloads exceed {} classes of service",
                handles.len(),
                caps.num_closids
            )));
        }
        let reserved_total: u32 = handles.iter().map(|h| h.reserved_ways).sum();
        if reserved_total > total_ways {
            return Err(ResctrlError::Parse(format!(
                "reserved ways {reserved_total} exceed the {total_ways}-way cache"
            )));
        }

        let mut ctl = DcatController {
            domains: handles
                .into_iter()
                .enumerate()
                .map(|(i, handle)| Domain {
                    ways: handle.reserved_ways,
                    cos: CosId((i + 1) as u8),
                    class: WorkloadClass::Keeper,
                    donor_mode: DonorMode::Fast,
                    cbm: None,
                    last_snapshot: CounterSnapshot::default(),
                    detector: PhaseDetector::new(config.phase_change_thr),
                    table: PerformanceTable::new(total_ways),
                    archived: BTreeMap::new(),
                    recurring: false,
                    baseline_ipc: None,
                    pending_baseline: true,
                    settle: config.settle_intervals,
                    prev_ipc: None,
                    prev_ways: handle.reserved_ways,
                    grow_denied: false,
                    saw_no_improvement: false,
                    capped: false,
                    stalled_at: None,
                    donor_floor: config.min_ways,
                    handle,
                })
                .collect(),
            planner: LayoutPlanner::new(total_ways),
            total_ways,
            interval: 0,
            config,
        };
        let targets: Vec<u32> = ctl.domains.iter().map(|d| d.ways).collect();
        ctl.apply(&targets, cat)?;
        Ok(ctl)
    }

    /// Number of managed workloads.
    pub fn num_domains(&self) -> usize {
        self.domains.len()
    }

    /// The controller's configuration.
    pub fn config(&self) -> &DcatConfig {
        &self.config
    }

    /// Current class of domain `i`.
    pub fn class_of(&self, i: usize) -> WorkloadClass {
        self.domains[i].class
    }

    /// Currently granted ways of domain `i`.
    pub fn ways_of(&self, i: usize) -> u32 {
        self.domains[i].ways
    }

    /// Number of controller intervals executed so far.
    pub fn intervals(&self) -> u64 {
        self.interval
    }

    /// The active performance table of domain `i`.
    pub fn performance_table(&self, i: usize) -> &PerformanceTable {
        &self.domains[i].table
    }

    /// The mask currently programmed for domain `i`, if any.
    pub fn mask_of(&self, i: usize) -> Option<Cbm> {
        self.domains[i].cbm
    }

    /// Number of managed domains (dCat pins one COS to each).
    pub fn domain_count(&self) -> usize {
        self.domains.len()
    }

    /// Per-domain snapshots for invariant checking (the `debug_assert!`
    /// hook at the end of [`Self::tick`] and the `dcat-verify` model
    /// checker both audit these).
    pub fn domain_views(&self) -> Vec<crate::invariants::DomainView> {
        self.domains
            .iter()
            .map(|d| crate::invariants::DomainView {
                class: d.class,
                ways: d.ways,
                reserved_ways: d.reserved(),
                cbm: d.cbm,
            })
            .collect()
    }

    /// Runs one controller interval: collect statistics, detect phase
    /// changes, categorize, and re-allocate.
    ///
    /// `snapshots[i]` must be the monotonic counter totals of domain `i`.
    pub fn tick(
        &mut self,
        snapshots: &[CounterSnapshot],
        cat: &mut dyn CacheController,
    ) -> Result<Vec<DomainReport>, ResctrlError> {
        let valid = vec![true; snapshots.len()];
        self.tick_validated(snapshots, &valid, cat)
    }

    /// [`Self::tick`] with a per-domain validity verdict.
    ///
    /// `valid[i] == false` means domain `i`'s interval cannot be trusted
    /// (its telemetry was missing, stale, or a counter reset): the domain
    /// is not classified, its settle countdown does not advance, and its
    /// allocation is **held** — it neither grows, donates, nor counts as
    /// idle. Its totals are still resynced to `snapshots[i]` so the next
    /// valid interval subtracts from fresh ground. The daemon uses this
    /// to skip degraded domains without losing the healthy ones.
    pub fn tick_validated(
        &mut self,
        snapshots: &[CounterSnapshot],
        valid: &[bool],
        cat: &mut dyn CacheController,
    ) -> Result<Vec<DomainReport>, ResctrlError> {
        self.tick_observed(snapshots, valid, cat, &mut Tracer::disabled())
    }

    /// [`Self::tick_validated`] with pipeline-stage tracing.
    ///
    /// Each of the paper's five steps runs as its own span over all domains —
    /// collect → phase-detect → baseline → categorize → allocate → apply —
    /// so the tracer sees the same stage boundaries Figure 4 draws. The
    /// per-domain work is order-independent across stages (each stage
    /// touches only `domains[i]`), so splitting the loop by stage is
    /// behavior-identical to the historical per-domain fused loop; the
    /// golden decision traces pin that.
    pub fn tick_observed(
        &mut self,
        snapshots: &[CounterSnapshot],
        valid: &[bool],
        cat: &mut dyn CacheController,
        tracer: &mut Tracer,
    ) -> Result<Vec<DomainReport>, ResctrlError> {
        assert_eq!(
            snapshots.len(),
            self.domains.len(),
            "one snapshot per domain"
        );
        assert_eq!(valid.len(), self.domains.len(), "one verdict per domain");
        self.interval += 1;
        let n = self.domains.len();

        // Step 2: collect statistics. Skipped intervals resync the totals
        // and judge nothing (their metrics stay the zero filler).
        let metrics: Vec<IntervalMetrics> = tracer.scope("collect", |_| {
            snapshots
                .iter()
                .enumerate()
                .map(|(i, snap)| {
                    if !valid[i] {
                        self.domains[i].last_snapshot = *snap;
                        return IntervalMetrics::from_delta(&CounterSnapshot::default());
                    }
                    let delta = snap.delta_since(&self.domains[i].last_snapshot);
                    self.domains[i].last_snapshot = *snap;
                    IntervalMetrics::from_delta(&delta)
                })
                .collect()
        });

        // Step 3: phase detection (idle demotion and rebaselining finish a
        // domain's classification outright).
        let mut phase_changed = vec![false; n];
        let mut classified: Vec<bool> = valid.iter().map(|ok| !ok).collect();
        tracer.scope("phase_detect", |_| {
            for i in 0..n {
                if classified[i] {
                    continue;
                }
                if let Some(fired) = self.phase_stage(i, &metrics[i]) {
                    phase_changed[i] = fired;
                    classified[i] = true;
                }
            }
        });

        // Step 1 (deferred): baseline establishment and refresh at the
        // reserved size, yielding the normalized IPC for categorization.
        let mut norms: Vec<Option<f64>> = vec![None; n];
        tracer.scope("baseline", |_| {
            for i in 0..n {
                if !classified[i] {
                    norms[i] = self.baseline_stage(i, &metrics[i]);
                }
            }
        });

        // Step 4: the Figure-6 state machine.
        tracer.scope("categorize", |_| {
            for i in 0..n {
                if let Some(norm) = norms[i] {
                    self.categorize_stage(i, &metrics[i], norm);
                }
            }
        });

        // Step 5: allocation.
        let targets = tracer.scope("allocate", |_| {
            let reclaimed = self
                .domains
                .iter()
                .any(|d| d.class == WorkloadClass::Reclaim);
            let mut targets = self.base_targets();
            // A held domain's target is its current size, whatever its class
            // asks for: without a trustworthy interval there is no basis to
            // move it.
            for (i, ok) in valid.iter().enumerate() {
                if !ok {
                    targets[i] = self.domains[i].ways;
                }
            }
            // A large release (a tenant declared Streaming or gone idle)
            // changes the pool regime: stalled growth probes are worth
            // retrying (the paper's Figure 15 shows the receiver absorbing a
            // way the streaming neighbor released).
            let released = self
                .domains
                .iter()
                .zip(targets.iter())
                .any(|(d, &t)| d.ways >= t + 2);
            if released {
                for d in &mut self.domains {
                    d.stalled_at = None;
                }
            }
            self.resolve_deficit(&mut targets);
            if self.config.policy == AllocationPolicy::MaxPerformance && reclaimed {
                self.max_performance_retarget(&mut targets);
            }
            self.grow_from_pool(&mut targets, valid);
            targets
        });
        tracer.scope("apply", |_| self.apply(&targets, cat))?;

        debug_assert_eq!(
            crate::invariants::check(&self.domain_views(), self.total_ways, self.config.min_ways),
            Ok(()),
            "controller invariants violated after interval {}",
            self.interval
        );

        Ok(self
            .domains
            .iter()
            .zip(metrics)
            .zip(phase_changed)
            .zip(valid)
            .map(|(((d, m), phase_changed), ok)| DomainReport {
                name: d.handle.name.clone(),
                class: d.class,
                ways: d.ways,
                cbm: d.cbm.map(|c| u64::from(c.0)),
                ipc: m.ipc,
                norm_ipc: if *ok {
                    d.baseline_ipc
                        .map(|b| if b > 0.0 { m.ipc / b } else { 0.0 })
                } else {
                    None
                },
                llc_miss_rate: m.llc_miss_rate,
                phase_changed,
                baseline_ipc: d.baseline_ipc,
                skipped: !*ok,
            })
            .collect())
    }

    /// Steps 2-3 for one domain: idle demotion and phase detection.
    ///
    /// Returns `Some(phase_change_fired)` when this stage finishes the
    /// domain's classification for the interval, `None` when the baseline
    /// and categorization stages should still run.
    fn phase_stage(&mut self, i: usize, m: &IntervalMetrics) -> Option<bool> {
        let cfg = self.config;
        // Out-of-range index means the domain set changed mid-tick; skip
        // the interval rather than panic (ticks degrade, they never die).
        let d = self.domains.get_mut(i)?;

        // An idle domain (no retired instructions) donates everything and
        // forgets its phase; its next activity is a fresh phase.
        if m.is_idle() {
            if let Some(sig) = d.detector.signature() {
                let bucket = PhaseDetector::bucket(sig, cfg.phase_bucket_quantum);
                let table = std::mem::replace(&mut d.table, PerformanceTable::new(self.total_ways));
                if !table.is_empty() {
                    d.archived.insert(bucket, table);
                }
            }
            d.detector.reset();
            d.class = WorkloadClass::Donor;
            d.donor_mode = DonorMode::Fast;
            d.baseline_ipc = None;
            d.pending_baseline = false;
            d.recurring = false;
            d.prev_ipc = None;
            d.saw_no_improvement = false;
            d.capped = false;
            d.stalled_at = None;
            d.donor_floor = cfg.min_ways;
            return Some(false);
        }

        // Step 3: phase detection. Reclaim fires immediately, bypassing
        // settling (it has the highest priority in the paper).
        let change = d.detector.observe(m.mem_access_per_instr);
        if change.requires_rebaseline() {
            // `observe` always leaves a signature behind a rebaseline
            // verdict; if that invariant ever breaks, treat the interval
            // as settled rather than panic mid-tick.
            let Some(new_sig) = d.detector.signature() else {
                return Some(false);
            };
            let new_bucket = PhaseDetector::bucket(new_sig, cfg.phase_bucket_quantum);
            if let PhaseChange::Changed { previous, .. } = change {
                let old_bucket = PhaseDetector::bucket(previous, cfg.phase_bucket_quantum);
                let table = std::mem::replace(&mut d.table, PerformanceTable::new(self.total_ways));
                if !table.is_empty() {
                    d.archived.insert(old_bucket, table);
                }
            }
            // A recurring phase restores its table, enabling the direct
            // jump to the preferred allocation (paper Figure 12).
            if !cfg.enable_perf_table_reuse {
                d.archived.clear();
            }
            if let Some(t) = d.archived.remove(&new_bucket) {
                d.table = t;
                d.recurring = true;
            } else {
                d.table = PerformanceTable::new(self.total_ways);
                d.recurring = false;
            }
            d.class = WorkloadClass::Reclaim;
            d.baseline_ipc = None;
            d.pending_baseline = true;
            d.prev_ipc = None;
            d.saw_no_improvement = false;
            d.capped = false;
            d.stalled_at = None;
            d.donor_floor = cfg.min_ways;
            d.settle = cfg.settle_intervals;
            return Some(matches!(change, PhaseChange::Changed { .. }));
        }

        None
    }

    /// Step 1 for one domain (deferred in the paper's ordering): settle
    /// countdown, baseline establishment at the reserved size, and baseline
    /// refresh. Returns the IPC normalized to the baseline when the domain
    /// should proceed to categorization, `None` when its classification is
    /// finished for this interval.
    fn baseline_stage(&mut self, i: usize, m: &IntervalMetrics) -> Option<f64> {
        let d = self.domains.get_mut(i)?;

        // Wait for the cache to settle after the last allocation change;
        // judge on the tick where the countdown reaches zero (that
        // interval ran with the new allocation warm).
        if d.settle > 0 {
            d.settle -= 1;
            if d.settle > 0 {
                return None;
            }
        }

        // Step 1 (deferred): establish the baseline at the reserved size.
        if d.pending_baseline {
            if d.ways == d.reserved() {
                d.baseline_ipc = Some(m.ipc);
                d.table.record(d.reserved(), 1.0);
                d.pending_baseline = false;
                d.prev_ipc = Some(m.ipc);
                d.prev_ways = d.ways;
                // Leave Reclaim: the workload now competes normally.
                d.class = WorkloadClass::Keeper;
            }
            return None;
        }
        let baseline = match d.baseline_ipc {
            Some(b) if b > 0.0 => b,
            _ => return None,
        };

        // The initial baseline is measured on a cold cache; while the
        // workload runs at its reserved size, keep the estimate fresh so
        // the guarantee and the normalizations track the warmed-up truth.
        let baseline = if d.ways == d.reserved() {
            let refreshed = 0.5 * baseline + 0.5 * m.ipc;
            d.baseline_ipc = Some(refreshed);
            refreshed
        } else {
            baseline
        };
        let norm = m.ipc / baseline;
        d.table.record(d.ways, norm);
        Some(norm)
    }

    /// Step 4 for one domain: the Figure-6 state machine plus the baseline
    /// guarantee, fed the normalized IPC from [`Self::baseline_stage`].
    fn categorize_stage(&mut self, i: usize, m: &IntervalMetrics, norm: f64) {
        let cfg = self.config;
        let Some(d) = self.domains.get_mut(i) else {
            return;
        };

        let improvement = match d.prev_ipc {
            Some(prev) if prev > 0.0 && d.ways != d.prev_ways => Some((m.ipc - prev) / prev),
            _ => None,
        };
        if matches!(improvement, Some(imp) if imp <= cfg.ipc_imp_thr) {
            d.saw_no_improvement = true;
        }
        let low_llc_use = m.llc_ref_per_instr() <= cfg.llc_ref_per_instr_thr;
        let streaming_cap = d.reserved().saturating_mul(cfg.streaming_multiplier);

        // Step 4: the Figure-6 state machine, driven by the transition
        // table in `transitions::FIGURE6`. "Ever improved" is the
        // streaming tell: the Streaming verdict requires that the phase's
        // table never recorded a meaningful gain over the baseline.
        let obs = transitions::Observation {
            low_llc_use,
            negligible_misses: m.llc_miss_rate <= cfg.donor_miss_rate_thr,
            high_misses: m.llc_miss_rate > cfg.llc_miss_rate_thr,
            improvement: match improvement {
                Some(imp) if imp > cfg.ipc_imp_thr => transitions::ImprovementSignal::Improved,
                Some(_) => transitions::ImprovementSignal::Stalled,
                None => transitions::ImprovementSignal::Unjudged,
            },
            ever_improved: d.table.iter().any(|(_, v)| v > 1.0 + cfg.ipc_imp_thr),
            saw_no_improvement: d.saw_no_improvement,
            at_growth_limit: d.ways >= streaming_cap || d.grow_denied,
            grow_denied: d.grow_denied,
            capped: d.capped,
            stalled_here: d.stalled_at == Some(d.ways),
        };
        let rule = transitions::decide(d.class, &obs);
        if rule.records_stall {
            d.stalled_at = Some(d.ways);
        }
        if rule.to == WorkloadClass::Donor {
            if obs.low_llc_use {
                // No LLC use at all: drop straight to the minimum.
                d.donor_mode = DonorMode::Fast;
            } else if d.class == WorkloadClass::Keeper {
                // Negligible misses: release one way at a time instead.
                d.donor_mode = DonorMode::Gradual;
            }
            // A continuing Donor keeps the mode it entered with.
        }
        d.class = rule.to;

        // Baseline guarantee: a workload sitting below its reserved size
        // whose performance fell below the baseline is restored at once.
        if d.ways < d.reserved() && norm < 1.0 - cfg.baseline_margin && !d.class.wants_growth() {
            // A *Streaming* workload suffering at the minimum allocation
            // was misclassified (true streaming is allocation-neutral).
            // Restore the reserved size and pin it there for the rest of
            // the phase; re-growing would just repeat the misverdict.
            if d.class == WorkloadClass::Streaming {
                d.capped = true;
            }
            // A workload that suffered below its reserved size proved it
            // needs more than it had: donation must not revisit that size.
            d.donor_floor = (d.ways + 1).min(d.reserved());
            d.class = WorkloadClass::Reclaim;
            // The phase (and its baseline) are still valid: no re-baseline.
        }

        d.prev_ipc = Some(m.ipc);
        d.prev_ways = d.ways;
    }

    /// Per-class way targets before pool distribution.
    fn base_targets(&mut self) -> Vec<u32> {
        let min = self.config.min_ways;
        self.domains
            .iter()
            .map(|d| match d.class {
                WorkloadClass::Reclaim => d.reserved(),
                WorkloadClass::Streaming => min,
                WorkloadClass::Donor => match d.donor_mode {
                    DonorMode::Fast => min.max(d.donor_floor),
                    // Gradual donation releases one way per *judged*
                    // interval; a settling donor holds its size.
                    DonorMode::Gradual if d.settle == 0 => {
                        d.ways.saturating_sub(1).max(min).max(d.donor_floor)
                    }
                    DonorMode::Gradual => d.ways,
                },
                WorkloadClass::Keeper | WorkloadClass::Unknown | WorkloadClass::Receiver => d.ways,
            })
            .collect()
    }

    /// If targets oversubscribe the cache (a Reclaim arrived while others
    /// hold extra), shave ways from domains holding more than their
    /// reserved share, largest surplus first.
    fn resolve_deficit(&self, targets: &mut [u32]) {
        let total: u32 = targets.iter().sum();
        let mut deficit = total.saturating_sub(self.total_ways);
        while deficit > 0 {
            let victim = (0..targets.len())
                .filter(|&i| {
                    targets[i] > self.config.min_ways
                        && targets[i] > self.domains[i].reserved()
                        && self.domains[i].class != WorkloadClass::Reclaim
                })
                .max_by_key(|&i| targets[i] - self.domains[i].reserved());
            match victim {
                Some(i) => {
                    targets[i] -= 1;
                    deficit -= 1;
                }
                None => {
                    // Nobody above baseline: shave any non-reclaim domain
                    // above the minimum (cannot happen when the reserved
                    // sums fit the cache, but stay safe).
                    match (0..targets.len())
                        .filter(|&i| {
                            targets[i] > self.config.min_ways
                                && self.domains[i].class != WorkloadClass::Reclaim
                        })
                        .max_by_key(|&i| targets[i])
                    {
                        Some(i) => {
                            targets[i] -= 1;
                            deficit -= 1;
                        }
                        None => break,
                    }
                }
            }
        }
    }

    /// The max-performance policy: after a reclaim, re-split the ways of
    /// the table-bearing beneficiaries to maximize total normalized IPC
    /// (paper Section 3.5's worked example).
    fn max_performance_retarget(&self, targets: &mut [u32]) {
        let mut candidates: Vec<usize> = Vec::with_capacity(self.domains.len());
        for (i, d) in self.domains.iter().enumerate() {
            if !d.pending_baseline
                && !d.table.is_empty()
                && matches!(
                    d.class,
                    WorkloadClass::Receiver | WorkloadClass::Unknown | WorkloadClass::Keeper
                )
                && d.table.len() >= 2
            {
                candidates.push(i);
            }
        }
        if candidates.len() < 2 {
            return;
        }
        let others: u32 = (0..targets.len())
            .filter(|i| !candidates.contains(i))
            .map(|i| targets[i])
            .sum();
        let budget = self.total_ways.saturating_sub(others);
        let tables: Vec<&PerformanceTable> =
            candidates.iter().map(|&i| &self.domains[i].table).collect();
        if let Some(split) = max_performance_split(&tables, budget) {
            for (k, &i) in candidates.iter().enumerate() {
                targets[i] = split[k].max(self.config.min_ways);
            }
        }
    }

    /// Distributes the free pool: Unknown workloads first (to resolve them
    /// into Receiver or Streaming sooner), then Receivers; one way per
    /// interval each, except that a recurring phase jumps straight to its
    /// recorded preferred allocation.
    fn grow_from_pool(&mut self, targets: &mut [u32], valid: &[bool]) {
        let assigned: u32 = targets.iter().sum();
        let mut free = self.total_ways.saturating_sub(assigned);

        // Desired totals per candidate.
        let mut order: Vec<usize> = Vec::with_capacity(self.domains.len());
        for class in [WorkloadClass::Unknown, WorkloadClass::Receiver] {
            for (i, d) in self.domains.iter().enumerate() {
                // Only freshly judged domains change size; a settling
                // domain keeps its allocation until its effect is known,
                // and a held (invalid-interval) domain was not judged.
                if d.class == class && d.settle == 0 && valid[i] {
                    order.push(i);
                }
            }
        }
        // Projected occupancy after this interval's shrinks: the planner's
        // shrink pass keeps the *top* `target` ways of a shrinking mask, so
        // the bottom ways it releases are already free for an adjacent
        // grower in the same interval. Growth is only granted where the
        // planner can extend the partition in place — a probe is worth one
        // adjacent way, never a relocation. There is no way-flush
        // instruction (paper §6), so a moved partition re-warms from DRAM,
        // and the cold start costs more than the extra way could return.
        let mut occupied = Cbm(0);
        for (j, d) in self.domains.iter().enumerate() {
            // One-way partitions do not block growth: the planner displaces
            // them (they hold at most one warm way).
            if targets[j] <= 1 {
                continue;
            }
            if let Some(m) = d.cbm {
                let keep = targets[j].min(m.ways());
                if keep > 0 {
                    let start = m.first_way().unwrap_or(0) + (m.ways() - keep);
                    occupied = occupied.union(Cbm::from_way_range(start, keep));
                }
            }
        }
        for &i in &order {
            let desired = {
                let d = &self.domains[i];
                if d.recurring {
                    match d.table.preferred_ways(1e-6) {
                        Some(p) if p > targets[i] => p,
                        _ => targets[i] + 1,
                    }
                } else {
                    targets[i] + 1
                }
            };
            let deficit = desired.saturating_sub(targets[i]).min(free);
            // Grant ways one at a time, each adjacent to the partition as
            // grown so far (mirroring the planner's superset-run search:
            // upward first, then downward), stopping at the first way that
            // would force a relocation.
            let granted = match self.domains[i].cbm {
                Some(m) => {
                    let mut lo = m.first_way().unwrap_or(0);
                    let mut hi = lo + m.ways();
                    let mut granted = 0;
                    while granted < deficit {
                        if hi < self.total_ways && !occupied.contains_way(hi) {
                            occupied = occupied.union(Cbm::from_way_range(hi, 1));
                            hi += 1;
                        } else if lo > 0 && !occupied.contains_way(lo - 1) {
                            lo -= 1;
                            occupied = occupied.union(Cbm::from_way_range(lo, 1));
                        } else {
                            break;
                        }
                        granted += 1;
                    }
                    granted
                }
                // Not programmed yet: nothing warm to lose.
                None => deficit,
            };
            let d = &mut self.domains[i];
            if granted == 0 && desired > targets[i] {
                d.grow_denied = true;
            } else {
                d.grow_denied = false;
                targets[i] += granted;
                free -= granted;
            }
        }
    }

    /// Programs the targets through CAT, minimizing mask churn.
    ///
    /// COS 0 (the default class of any unmanaged core) is confined to the
    /// free pool so stray host threads cannot pollute tenant partitions;
    /// when the pool is empty it is pinned to the top way (CAT forbids an
    /// empty mask, so a fully allocated cache unavoidably shares one way
    /// with unmanaged cores).
    fn apply(
        &mut self,
        targets: &[u32],
        cat: &mut dyn CacheController,
    ) -> Result<(), ResctrlError> {
        let previous: Vec<Option<Cbm>> = self.domains.iter().map(|d| d.cbm).collect();
        let layout = self.planner.layout_stable(targets, &previous)?;
        // Ways a domain lost must be flushed (the paper's user-level flush
        // pass): lines filled under the old mask would otherwise keep
        // hitting — and surviving — in ways their owner can no longer
        // fill, silently extending its effective allocation.
        let mut lost = Cbm(0);
        for (i, cbm) in layout.iter().enumerate() {
            if let Some(old) = self.domains[i].cbm {
                lost = lost.union(old.difference(*cbm));
            }
        }
        // The free pool is whatever the tenant masks leave unclaimed; CAT
        // masks must be contiguous, so COS 0 gets the longest free run.
        let occupied = layout.iter().fold(Cbm(0), |acc, m| acc.union(*m));
        let default_mask = longest_free_run(occupied, self.total_ways)
            .unwrap_or_else(|| Cbm::from_way_range(self.total_ways - 1, 1));
        // Program in two passes, shrinkers first. A mask that only gives
        // up ways can never transiently overlap a neighbor, and the ways
        // it releases are exactly what the growers programmed afterwards
        // claim — so if a transient write failure aborts the sequence
        // partway, the mix of old and new masks left behind (in hardware
        // and in the recorded state, which advances per domain only after
        // its write succeeds) is still pairwise disjoint and cannot
        // oversubscribe the cache.
        let (shrinks, grows): (Vec<usize>, Vec<usize>) = (0..layout.len()).partition(
            |&i| matches!(self.domains[i].cbm, Some(old) if layout[i].difference(old).is_empty()),
        );
        for &i in &shrinks {
            self.program_domain(i, layout[i], targets[i], cat)?;
        }
        // COS 0 moves between the passes: its new run may use ways the
        // shrinkers just released, while growers may claim ways it held.
        cat.program_cos(CosId(0), default_mask)?;
        for &i in &grows {
            self.program_domain(i, layout[i], targets[i], cat)?;
        }
        if !lost.is_empty() {
            cat.flush_cbm(lost)?;
        }
        Ok(())
    }

    /// Programs one domain's mask (if changed), first-time core
    /// assignment, and records the grant. The recorded state advances
    /// only after the backend accepted the write, so a failure leaves the
    /// record matching the hardware.
    fn program_domain(
        &mut self,
        i: usize,
        cbm: Cbm,
        target: u32,
        cat: &mut dyn CacheController,
    ) -> Result<(), ResctrlError> {
        // The caller derives `i` from the layout it just planned over
        // `self.domains`; an out-of-range index means the plan is stale,
        // and skipping the program beats panicking with CAT half-written.
        let Some(d) = self.domains.get_mut(i) else {
            return Ok(());
        };
        let first_program = d.cbm.is_none();
        if d.cbm != Some(cbm) {
            cat.program_cos(d.cos, cbm)?;
            d.cbm = Some(cbm);
        }
        if first_program {
            for &core in &d.handle.cores {
                cat.assign_core(core, d.cos)?;
            }
        }
        if d.ways != target {
            d.ways = target;
            d.settle = self.config.settle_intervals;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resctrl::{CatCapabilities, InMemoryController};

    fn snapshot(l1: u64, llc_r: u64, llc_m: u64, ins: u64, cyc: u64) -> CounterSnapshot {
        CounterSnapshot {
            l1_ref: l1,
            llc_ref: llc_r,
            llc_miss: llc_m,
            ret_ins: ins,
            cycles: cyc,
        }
    }

    /// A synthetic domain feeder: accumulates per-interval deltas into
    /// monotonic snapshots.
    struct Feeder {
        totals: Vec<CounterSnapshot>,
    }

    impl Feeder {
        fn new(n: usize) -> Self {
            Feeder {
                totals: vec![CounterSnapshot::default(); n],
            }
        }

        fn add(&mut self, i: usize, delta: CounterSnapshot) -> &Vec<CounterSnapshot> {
            self.totals[i] = self.totals[i].merged_with(&delta);
            &self.totals
        }
    }

    fn controller_with(
        n: usize,
        reserved: u32,
        config: DcatConfig,
    ) -> (DcatController, InMemoryController) {
        let mut cat = InMemoryController::new(CatCapabilities::with_ways(20), n as u32 * 2);
        let handles: Vec<WorkloadHandle> = (0..n)
            .map(|i| {
                WorkloadHandle::new(
                    format!("vm{i}"),
                    vec![(i * 2) as u32, (i * 2 + 1) as u32],
                    reserved,
                )
            })
            .collect();
        let ctl = DcatController::new(config, handles, &mut cat).unwrap();
        (ctl, cat)
    }

    fn fast_config() -> DcatConfig {
        DcatConfig {
            settle_intervals: 1,
            ..DcatConfig::default()
        }
    }

    /// Interval of an MLR-like workload: memory heavy, missing hard.
    fn missing_hard() -> CounterSnapshot {
        snapshot(340_000, 120_000, 60_000, 1_000_000, 20_000_000)
    }

    /// Same phase signature, better IPC, fewer misses (as if granted more
    /// cache).
    fn improved(pct: f64, miss_rate: f64) -> CounterSnapshot {
        let cycles = (20_000_000.0 / (1.0 + pct)) as u64;
        let miss = (120_000.0 * miss_rate) as u64;
        snapshot(340_000, 120_000, miss, 1_000_000, cycles)
    }

    /// Compute-bound interval: no LLC use at all.
    fn compute_bound() -> CounterSnapshot {
        snapshot(20_000, 100, 10, 1_000_000, 800_000)
    }

    #[test]
    fn initial_state_programs_reserved_partitions() {
        let (ctl, cat) = controller_with(3, 4, DcatConfig::default());
        assert_eq!(ctl.ways_of(0), 4);
        // Non-overlapping contiguous partitions programmed.
        assert_eq!(cat.cos_mask(CosId(1)).unwrap().ways(), 4);
        assert_eq!(cat.cos_mask(CosId(2)).unwrap().ways(), 4);
        assert!(!cat.has_overlapping_active_masks());
        // Cores are associated with their classes.
        assert_eq!(cat.core_cos(0).unwrap(), CosId(1));
        assert_eq!(cat.core_cos(5).unwrap(), CosId(3));
    }

    #[test]
    fn oversubscribed_reserved_ways_rejected() {
        let mut cat = InMemoryController::new(CatCapabilities::with_ways(20), 4);
        let handles = vec![
            WorkloadHandle::new("a", vec![0], 12),
            WorkloadHandle::new("b", vec![1], 12),
        ];
        assert!(DcatController::new(DcatConfig::default(), handles, &mut cat).is_err());
    }

    #[test]
    fn too_many_domains_rejected() {
        let mut cat = InMemoryController::new(CatCapabilities::with_ways(20), 20);
        let handles: Vec<WorkloadHandle> = (0..16)
            .map(|i| WorkloadHandle::new(format!("d{i}"), vec![i as u32], 1))
            .collect();
        assert!(DcatController::new(DcatConfig::default(), handles, &mut cat).is_err());
    }

    #[test]
    fn idle_workload_becomes_donor_at_min_ways() {
        let (mut ctl, mut cat) = controller_with(2, 4, fast_config());
        let idle = vec![CounterSnapshot::default(); 2];
        let reports = ctl.tick(&idle, &mut cat).unwrap();
        assert_eq!(reports[0].class, WorkloadClass::Donor);
        assert_eq!(reports[0].ways, 1);
        assert_eq!(reports[1].ways, 1);
    }

    #[test]
    fn compute_bound_workload_donates() {
        let (mut ctl, mut cat) = controller_with(2, 4, fast_config());
        let mut feeder = Feeder::new(2);
        // First interval establishes the phase -> Reclaim at reserved.
        feeder.add(0, compute_bound());
        let snaps = feeder.add(1, compute_bound()).clone();
        ctl.tick(&snaps, &mut cat).unwrap();
        // Let the baseline be measured, then classify.
        for _ in 0..4 {
            feeder.add(0, compute_bound());
            let snaps = feeder.add(1, compute_bound()).clone();
            ctl.tick(&snaps, &mut cat).unwrap();
        }
        assert_eq!(ctl.class_of(0), WorkloadClass::Donor);
        assert_eq!(ctl.ways_of(0), 1);
    }

    #[test]
    fn cache_hungry_workload_grows_one_way_per_decision() {
        let (mut ctl, mut cat) = controller_with(2, 4, fast_config());
        let mut feeder = Feeder::new(2);
        let mut grow_points = Vec::new();
        for step in 0..8 {
            feeder.add(0, missing_hard());
            let snaps = feeder.add(1, compute_bound()).clone();
            ctl.tick(&snaps, &mut cat).unwrap();
            grow_points.push((step, ctl.ways_of(0)));
        }
        let final_ways = ctl.ways_of(0);
        assert!(
            final_ways > 4,
            "hungry workload should grow, got {final_ways}"
        );
        // Growth is stepwise: never more than +1 between consecutive ticks.
        for w in grow_points.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1, "jumped {} -> {}", w[0].1, w[1].1);
        }
    }

    /// In-between interval: real LLC use, miss rate between the donor and
    /// growth thresholds — a Keeper that neither donates nor grows.
    fn keeper_steady() -> CounterSnapshot {
        snapshot(340_000, 120_000, 2_000, 1_000_000, 7_000_000)
    }

    #[test]
    fn blocked_probe_never_relocates_a_multiway_partition() {
        // A hungry middle domain is flanked by two multi-way Keepers; the
        // free pool is not adjacent to it. Growing would force either the
        // grower or a bystander to relocate — and with no way-flush
        // instruction a moved partition restarts cold — so the probe is
        // denied and every multi-way mask stays exactly where it was.
        let (mut ctl, mut cat) = controller_with(3, 4, fast_config());
        let mut feeder = Feeder::new(3);
        let initial: Vec<Cbm> = (1..=3).map(|c| cat.cos_mask(CosId(c)).unwrap()).collect();
        for _ in 0..8 {
            feeder.add(0, keeper_steady());
            feeder.add(1, missing_hard());
            let snaps = feeder.add(2, keeper_steady()).clone();
            ctl.tick(&snaps, &mut cat).unwrap();
            assert_eq!(cat.cos_mask(CosId(1)).unwrap(), initial[0]);
            assert_eq!(cat.cos_mask(CosId(3)).unwrap(), initial[2]);
            assert!(ctl.ways_of(1) <= 4, "blocked probe must not grow");
        }
        assert_eq!(
            cat.cos_mask(CosId(2)).unwrap(),
            initial[1],
            "denied grower keeps its own warm ways too"
        );
    }

    #[test]
    fn dry_pool_probe_resolves_instead_of_sticking_unknown() {
        // Fully reserved cache: 4 tenants x 5 ways = 20, zero free pool.
        // The hungry tenant's probe is denied immediately; it must settle
        // as a Keeper (with the stall recorded for a later retry), not
        // spin as Unknown forever re-requesting a grow it cannot get.
        let (mut ctl, mut cat) = controller_with(4, 5, fast_config());
        let mut feeder = Feeder::new(4);
        let mut unknown_ticks = 0;
        for _ in 0..10 {
            feeder.add(0, missing_hard());
            for i in 1..3 {
                feeder.add(i, keeper_steady());
            }
            let snaps = feeder.add(3, keeper_steady()).clone();
            ctl.tick(&snaps, &mut cat).unwrap();
            if ctl.class_of(0) == WorkloadClass::Unknown {
                unknown_ticks += 1;
            }
            assert_eq!(ctl.ways_of(0), 5, "nothing to grant on a dry pool");
        }
        assert_eq!(ctl.class_of(0), WorkloadClass::Keeper);
        assert!(
            unknown_ticks <= 2,
            "probe should resolve within a judged interval, was Unknown for {unknown_ticks} ticks"
        );
    }

    #[test]
    fn improving_workload_becomes_receiver() {
        let (mut ctl, mut cat) = controller_with(2, 4, fast_config());
        let mut feeder = Feeder::new(2);
        // Phase + baseline establishment.
        for _ in 0..3 {
            feeder.add(0, missing_hard());
            let snaps = feeder.add(1, compute_bound()).clone();
            ctl.tick(&snaps, &mut cat).unwrap();
        }
        // Keeper -> Unknown (missing hard), grows; improvement confirms
        // Receiver.
        let mut pct = 0.0;
        for _ in 0..4 {
            pct += 0.15;
            feeder.add(0, improved(pct, 0.5));
            let snaps = feeder.add(1, compute_bound()).clone();
            ctl.tick(&snaps, &mut cat).unwrap();
        }
        assert_eq!(ctl.class_of(0), WorkloadClass::Receiver);
    }

    #[test]
    fn non_improving_workload_detected_streaming_and_dropped() {
        let cfg = DcatConfig {
            settle_intervals: 1,
            ..DcatConfig::default()
        };
        let (mut ctl, mut cat) = controller_with(2, 2, cfg);
        let mut feeder = Feeder::new(2);
        // MLOAD-like: always missing, IPC never changes.
        for _ in 0..20 {
            feeder.add(0, missing_hard());
            let snaps = feeder.add(1, compute_bound()).clone();
            ctl.tick(&snaps, &mut cat).unwrap();
            if ctl.class_of(0) == WorkloadClass::Streaming {
                break;
            }
        }
        assert_eq!(ctl.class_of(0), WorkloadClass::Streaming);
        // One more tick applies the minimum allocation.
        feeder.add(0, missing_hard());
        let snaps = feeder.add(1, compute_bound()).clone();
        ctl.tick(&snaps, &mut cat).unwrap();
        assert_eq!(ctl.ways_of(0), 1);
    }

    #[test]
    fn streaming_cap_is_three_times_reserved() {
        let cfg = DcatConfig {
            settle_intervals: 1,
            ..DcatConfig::default()
        };
        let (mut ctl, mut cat) = controller_with(2, 2, cfg);
        let mut feeder = Feeder::new(2);
        let mut max_ways = 0;
        for _ in 0..20 {
            feeder.add(0, missing_hard());
            let snaps = feeder.add(1, compute_bound()).clone();
            ctl.tick(&snaps, &mut cat).unwrap();
            max_ways = max_ways.max(ctl.ways_of(0));
        }
        assert!(
            max_ways <= 3 * 2 + 1,
            "streaming workload grew to {max_ways}, cap is ~6"
        );
    }

    #[test]
    fn phase_change_triggers_reclaim_to_reserved() {
        let (mut ctl, mut cat) = controller_with(2, 4, fast_config());
        let mut feeder = Feeder::new(2);
        // Grow the workload beyond reserved.
        for i in 0..8 {
            feeder.add(0, improved(0.1 * i as f64, 0.4));
            let snaps = feeder.add(1, compute_bound()).clone();
            ctl.tick(&snaps, &mut cat).unwrap();
        }
        assert!(ctl.ways_of(0) > 4);
        // New phase: very different memory intensity.
        feeder.add(0, snapshot(900_000, 50_000, 25_000, 1_000_000, 10_000_000));
        let snaps = feeder.add(1, compute_bound()).clone();
        let reports = ctl.tick(&snaps, &mut cat).unwrap();
        assert!(reports[0].phase_changed);
        assert_eq!(reports[0].class, WorkloadClass::Reclaim);
        assert_eq!(ctl.ways_of(0), 4, "reclaim returns to the reserved size");
    }

    #[test]
    fn masks_never_overlap_across_ticks() {
        let (mut ctl, mut cat) = controller_with(4, 3, fast_config());
        let mut feeder = Feeder::new(4);
        for step in 0..12 {
            feeder.add(0, missing_hard());
            feeder.add(1, compute_bound());
            feeder.add(
                2,
                if step < 6 {
                    missing_hard()
                } else {
                    CounterSnapshot::default()
                },
            );
            let snaps = feeder.add(3, CounterSnapshot::default()).clone();
            ctl.tick(&snaps, &mut cat).unwrap();
            assert!(
                !cat.has_overlapping_active_masks(),
                "overlapping masks at step {step}"
            );
        }
    }

    #[test]
    fn total_ways_never_oversubscribed() {
        let (mut ctl, mut cat) = controller_with(4, 5, fast_config());
        let mut feeder = Feeder::new(4);
        for _ in 0..15 {
            for i in 0..4 {
                feeder.add(i, missing_hard());
            }
            let snaps = feeder.totals.clone();
            ctl.tick(&snaps, &mut cat).unwrap();
            let total: u32 = (0..4).map(|i| ctl.ways_of(i)).sum();
            assert!(total <= 20, "allocated {total} of 20 ways");
        }
    }

    #[test]
    fn reclaim_takes_priority_over_holders_of_extra_ways() {
        let (mut ctl, mut cat) = controller_with(3, 4, fast_config());
        let mut feeder = Feeder::new(3);
        // Domain 0 grows while 1, 2 idle.
        for i in 0..10 {
            feeder.add(0, improved(0.12 * i as f64, 0.4));
            feeder.add(1, CounterSnapshot::default());
            let snaps = feeder.add(2, CounterSnapshot::default()).clone();
            ctl.tick(&snaps, &mut cat).unwrap();
        }
        let grown = ctl.ways_of(0);
        assert!(grown > 8, "domain 0 should hold extra ways, has {grown}");
        // Domains 1 and 2 wake up: phase change -> Reclaim.
        for _ in 0..3 {
            feeder.add(0, improved(1.0, 0.4));
            feeder.add(1, missing_hard());
            let snaps = feeder.add(2, missing_hard()).clone();
            ctl.tick(&snaps, &mut cat).unwrap();
        }
        assert!(ctl.ways_of(1) >= 4, "reclaimer 1 restored to reserved");
        assert!(ctl.ways_of(2) >= 4, "reclaimer 2 restored to reserved");
        let total: u32 = (0..3).map(|i| ctl.ways_of(i)).sum();
        assert!(total <= 20);
    }

    #[test]
    fn recurring_phase_jumps_to_preferred_ways() {
        let (mut ctl, mut cat) = controller_with(2, 4, fast_config());
        let mut feeder = Feeder::new(2);
        // Discover: grow to a preferred size with improvements that stop.
        let schedule = [0.0, 0.0, 0.15, 0.3, 0.45, 0.45, 0.45, 0.45];
        for &pct in &schedule {
            feeder.add(0, improved(pct, if pct >= 0.45 { 0.01 } else { 0.4 }));
            let snaps = feeder.add(1, compute_bound()).clone();
            ctl.tick(&snaps, &mut cat).unwrap();
        }
        let discovered = ctl.ways_of(0);
        assert!(discovered > 4);
        // Go idle (phase forgotten, table archived).
        for _ in 0..2 {
            let snaps = feeder.totals.clone();
            ctl.tick(&snaps, &mut cat).unwrap();
        }
        assert_eq!(ctl.ways_of(0), 1);
        // Same workload returns: same signature -> archived table restored.
        feeder.add(0, missing_hard());
        let snaps = feeder.add(1, compute_bound()).clone();
        ctl.tick(&snaps, &mut cat).unwrap();
        assert_eq!(ctl.ways_of(0), 4, "reclaim first");
        // Establish baseline, then the jump should be immediate (not +1).
        feeder.add(0, improved(0.0, 0.4));
        let snaps = feeder.add(1, compute_bound()).clone();
        ctl.tick(&snaps, &mut cat).unwrap();
        feeder.add(0, improved(0.1, 0.4));
        let snaps = feeder.add(1, compute_bound()).clone();
        ctl.tick(&snaps, &mut cat).unwrap();
        let after_two_decisions = ctl.ways_of(0);
        assert!(
            after_two_decisions >= discovered.min(6),
            "expected jump toward {discovered}, got {after_two_decisions}"
        );
    }

    /// High LLC use with negligible misses: the gradual donor path.
    fn low_miss_heavy_use() -> CounterSnapshot {
        snapshot(340_000, 120_000, 100, 1_000_000, 7_000_000)
    }

    #[test]
    fn donor_with_negligible_misses_shrinks_gradually() {
        let (mut ctl, mut cat) = controller_with(2, 6, fast_config());
        let mut feeder = Feeder::new(2);
        let mut series = Vec::new();
        for _ in 0..10 {
            feeder.add(0, low_miss_heavy_use());
            let snaps = feeder.add(1, compute_bound()).clone();
            ctl.tick(&snaps, &mut cat).unwrap();
            series.push(ctl.ways_of(0));
        }
        assert!(
            series.last().copied().unwrap() < 6,
            "low-miss workload should donate, series {series:?}"
        );
        // Gradual: one way at a time, never a cliff to the minimum.
        for w in series.windows(2) {
            assert!(w[0] - w[1] <= 1 || w[1] >= w[0], "cliff in {series:?}");
        }
    }

    #[test]
    fn default_class_confined_to_free_pool() {
        let (mut ctl, mut cat) = controller_with(2, 4, fast_config());
        let idle = vec![CounterSnapshot::default(); 2];
        ctl.tick(&idle, &mut cat).unwrap();
        // Both domains idle -> 1 way each, keeping their *top* ways (3 and
        // 7, shrink releases toward the left neighbor); COS 0 gets the
        // longest free run (ways 8-19).
        let cos0 = cat.cos_mask(CosId(0)).unwrap();
        assert_eq!(cos0.ways(), 12);
        assert!(!cos0.overlaps(cat.cos_mask(CosId(1)).unwrap()));
        assert!(!cos0.overlaps(cat.cos_mask(CosId(2)).unwrap()));
        let _ = ctl;
    }

    #[test]
    fn streaming_misverdict_is_capped_at_reserved() {
        // A workload that shows no improvement during growth (so it is
        // (mis)judged Streaming) but genuinely suffers at the minimum.
        let (mut ctl, mut cat) = controller_with(2, 2, fast_config());
        let mut feeder = Feeder::new(2);
        let flat = || missing_hard(); // constant IPC while growing
        let mut saw_streaming = false;
        for _ in 0..24 {
            let delta = if ctl.ways_of(0) <= 1 {
                // Sub-baseline: IPC collapses (norm < 1 - margin).
                snapshot(340_000, 120_000, 90_000, 1_000_000, 60_000_000)
            } else {
                flat()
            };
            feeder.add(0, delta);
            let snaps = feeder.add(1, compute_bound()).clone();
            ctl.tick(&snaps, &mut cat).unwrap();
            saw_streaming |= ctl.class_of(0) == WorkloadClass::Streaming;
        }
        assert!(
            saw_streaming,
            "flat-growth workload should be judged streaming"
        );
        assert!(
            ctl.ways_of(0) >= 2,
            "misclassified workload must be restored to its baseline, has {}",
            ctl.ways_of(0)
        );
        // And it stays there: no further streaming oscillation.
        for _ in 0..6 {
            feeder.add(0, flat());
            let snaps = feeder.add(1, compute_bound()).clone();
            ctl.tick(&snaps, &mut cat).unwrap();
            assert!(ctl.ways_of(0) >= 2, "oscillated back below baseline");
        }
    }

    #[test]
    fn donor_that_suffered_keeps_a_floor() {
        let (mut ctl, mut cat) = controller_with(2, 6, fast_config());
        let mut feeder = Feeder::new(2);
        let mut reclaim_count = 0;
        for _ in 0..30 {
            // The workload has negligible misses above 3 ways but
            // collapses below that (its working set needs 3 ways).
            let delta = if ctl.ways_of(0) >= 3 {
                low_miss_heavy_use()
            } else {
                snapshot(340_000, 120_000, 2_000, 1_000_000, 30_000_000)
            };
            feeder.add(0, delta);
            let snaps = feeder.add(1, compute_bound()).clone();
            let reports = ctl.tick(&snaps, &mut cat).unwrap();
            if reports[0].class == WorkloadClass::Reclaim {
                reclaim_count += 1;
            }
        }
        assert!(
            reclaim_count <= 2,
            "donor oscillated: {reclaim_count} guarantee reclaims"
        );
        assert!(
            ctl.ways_of(0) >= 3,
            "floor not respected: {} ways",
            ctl.ways_of(0)
        );
    }

    #[test]
    fn settle_interval_delays_judgement() {
        let slow = DcatConfig {
            settle_intervals: 3,
            ..DcatConfig::default()
        };
        let (mut ctl_slow, mut cat_slow) = controller_with(2, 4, slow);
        let (mut ctl_fast, mut cat_fast) = controller_with(2, 4, fast_config());
        let mut feeder_slow = Feeder::new(2);
        let mut feeder_fast = Feeder::new(2);
        for _ in 0..8 {
            feeder_slow.add(0, missing_hard());
            let s1 = feeder_slow.add(1, compute_bound()).clone();
            ctl_slow.tick(&s1, &mut cat_slow).unwrap();
            feeder_fast.add(0, missing_hard());
            let s2 = feeder_fast.add(1, compute_bound()).clone();
            ctl_fast.tick(&s2, &mut cat_fast).unwrap();
        }
        assert!(
            ctl_fast.ways_of(0) > ctl_slow.ways_of(0),
            "longer settling must slow growth: fast={} slow={}",
            ctl_fast.ways_of(0),
            ctl_slow.ways_of(0)
        );
    }

    #[test]
    fn snapshot_count_mismatch_panics() {
        let (mut ctl, mut cat) = controller_with(2, 4, fast_config());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = ctl.tick(&[CounterSnapshot::default()], &mut cat);
        }));
        assert!(result.is_err(), "wrong snapshot count must be rejected");
    }

    #[test]
    fn longest_free_run_selection() {
        use super::longest_free_run;
        assert_eq!(
            longest_free_run(Cbm(0b0), 8),
            Some(Cbm::from_way_range(0, 8))
        );
        assert_eq!(longest_free_run(Cbm(0b1111_1111), 8), None);
        // Ties go to the earliest run.
        assert_eq!(
            longest_free_run(Cbm(0b0001_1000), 8),
            Some(Cbm::from_way_range(0, 3))
        );
        assert_eq!(
            longest_free_run(Cbm(0b1000_0001), 8),
            Some(Cbm::from_way_range(1, 6))
        );
    }

    #[test]
    fn reports_carry_normalized_ipc() {
        let (mut ctl, mut cat) = controller_with(1, 4, fast_config());
        let mut feeder = Feeder::new(1);
        let mut last = None;
        for i in 0..5 {
            let snaps = feeder.add(0, improved(0.05 * i as f64, 0.4)).clone();
            last = Some(ctl.tick(&snaps, &mut cat).unwrap());
        }
        let report = &last.unwrap()[0];
        assert!(report.baseline_ipc.is_some());
        let norm = report.norm_ipc.unwrap();
        assert!(
            norm > 0.9,
            "normalized IPC should be near/above 1, got {norm}"
        );
    }
}
