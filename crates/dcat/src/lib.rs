//! dCat: dynamic LLC way-allocation on top of Intel CAT.
//!
//! Reproduction of *"dCat: Dynamic Cache Management for Efficient,
//! Performance-sensitive Infrastructure-as-a-Service"* (EuroSys 2018).
//!
//! The controller treats each tenant VM/container as a black box and runs
//! the paper's five-step loop once per interval:
//!
//! 1. **Get Baseline** — after a phase change the workload is returned to
//!    its contracted (reserved) way count; the IPC measured there is the
//!    guaranteed minimum for the phase.
//! 2. **Collect Statistics** — per-domain counter deltas become
//!    [`perf_events::IntervalMetrics`].
//! 3. **Detect Phase Change** — memory accesses per instruction
//!    (`l1_ref / ret_ins`) shifting by more than 10% signals a new phase
//!    ([`phase::PhaseDetector`]).
//! 4. **Categorize Workloads** — the Figure-6 state machine over
//!    {[`WorkloadClass::Keeper`], [`WorkloadClass::Donor`],
//!    [`WorkloadClass::Receiver`], [`WorkloadClass::Streaming`],
//!    [`WorkloadClass::Unknown`], [`WorkloadClass::Reclaim`]}.
//! 5. **Allocate Cache** — way-granular targets with Reclaim at absolute
//!    priority, Unknown prioritized over Receiver, and either the
//!    max-fairness or the performance-table-driven max-performance policy;
//!    the targets are laid out as contiguous non-overlapping CBMs and
//!    programmed through any [`resctrl::CacheController`].
//!
//! Per-phase [`perf_table::PerformanceTable`]s record normalized IPC per
//! way count so a recurring phase is granted its preferred allocation
//! immediately (the paper's Figure 12).
//!
//! # Examples
//!
//! ```
//! use dcat::{DcatConfig, DcatController, WorkloadHandle};
//! use resctrl::{CacheController, CatCapabilities, InMemoryController};
//!
//! let mut cat = InMemoryController::new(CatCapabilities::with_ways(20), 4);
//! let domains = vec![
//!     WorkloadHandle::new("tenant-a", vec![0, 1], 3),
//!     WorkloadHandle::new("tenant-b", vec![2, 3], 3),
//! ];
//! let mut ctl = DcatController::new(DcatConfig::default(), domains, &mut cat).unwrap();
//! // Each interval: read counters, then tick.
//! let snapshots = vec![Default::default(); 2];
//! let reports = ctl.tick(&snapshots, &mut cat).unwrap();
//! assert_eq!(reports.len(), 2);
//! ```

pub mod baselines;
pub mod config;
pub mod controller;
pub mod daemon;
pub mod events;
pub mod invariants;
pub mod lfoc;
pub mod memshare;
pub mod perf_table;
pub mod phase;
pub mod policy;
pub mod state;
pub mod telemetry;
pub mod transitions;

pub use baselines::{SharedCachePolicy, StaticCatPolicy};
pub use config::{AllocationPolicy, DcatConfig};
pub use controller::{DcatController, DomainReport, WorkloadHandle};
pub use daemon::{
    frame_from_observation, frame_from_reports, DaemonConfig, ResiliencePolicy, TickObservation,
};
pub use events::{DegradeReason, Event};
pub use lfoc::{LfocConfig, LfocPolicy};
pub use memshare::{MemshareConfig, MemsharePolicy};
pub use perf_table::PerformanceTable;
pub use phase::{PhaseChange, PhaseDetector};
pub use policy::CachePolicy;
pub use state::WorkloadClass;
pub use telemetry::{
    parse_telemetry_lossy, FaultyTelemetry, FileTelemetry, RowIssue, TelemetryFeed,
};
