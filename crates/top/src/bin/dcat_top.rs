//! dcat-top — live operational dashboard for a dCat run.
//!
//! Usage:
//!
//! ```text
//! dcat-top --replay <frames.jsonl | flight.jsonl> [--headless]
//! dcat-top --follow <path> [--interval-ms <n>] [--max-ticks <n>] [--headless]
//! ```
//!
//! `--replay` renders a recorded `dcat-frames/v1` stream (or a
//! `dcat-flight/v1` recorder dump) in full and exits; `--follow` polls a
//! growing file — typically the `--frames-out` target of a running
//! `dcatd` — and redraws the latest frame as it lands. `--headless`
//! disables ANSI color and screen clearing so output can be piped or
//! byte-diffed (the CI golden check replays fig07's stream this way).
//! `--max-ticks` ends a follow after that many frames, for scripted runs.
//!
//! Validation is `dcat_obs::frames::parse_stream`: a stream this tool
//! renders is exactly a stream `obs-dump --check` accepts.

use std::io::Read as _;
use std::process::ExitCode;
use std::time::Duration;

use dcat_top::{render_frame, render_replay, RenderOptions, CLEAR_SCREEN};

fn usage() -> &'static str {
    "usage: dcat-top --replay <path> [--headless]\n\
            dcat-top --follow <path> [--interval-ms <n>] [--max-ticks <n>] [--headless]"
}

struct Args {
    replay: Option<String>,
    follow: Option<String>,
    interval: Duration,
    max_ticks: Option<u64>,
    headless: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        replay: None,
        follow: None,
        interval: Duration::from_millis(500),
        max_ticks: None,
        headless: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |what: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{what} requires a value"))
        };
        match arg.as_str() {
            "--replay" => args.replay = Some(value("--replay")?),
            "--follow" => args.follow = Some(value("--follow")?),
            "--interval-ms" => {
                let raw = value("--interval-ms")?;
                let ms: u64 = raw.parse().map_err(|e| format!("bad --interval-ms: {e}"))?;
                args.interval = Duration::from_millis(ms);
            }
            "--max-ticks" => {
                let raw = value("--max-ticks")?;
                args.max_ticks = Some(raw.parse().map_err(|e| format!("bad --max-ticks: {e}"))?);
            }
            "--headless" => args.headless = true,
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown argument {other:?}\n{}", usage())),
        }
    }
    if args.replay.is_some() == args.follow.is_some() {
        return Err(format!(
            "exactly one of --replay / --follow is required\n{}",
            usage()
        ));
    }
    Ok(args)
}

fn replay(path: &str, opts: &RenderOptions) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let rendered = render_replay(&text, opts)?;
    print!("{rendered}");
    Ok(())
}

/// Follow mode: poll the file, and whenever new complete frames appear,
/// redraw (interactive) or append (headless) them. The whole file is
/// re-validated each poll through the shared parser — a frame stream is
/// bounded by its run length, and correctness-over-cleverness is the
/// right trade for an operator tool.
fn follow(path: &str, args: &Args, opts: &RenderOptions) -> Result<(), String> {
    let mut seen_bytes = 0usize;
    let mut shown = 0u64;
    let mut buf = String::new();
    loop {
        let mut file = std::fs::File::open(path).map_err(|e| format!("opening {path}: {e}"))?;
        buf.clear();
        file.read_to_string(&mut buf)
            .map_err(|e| format!("reading {path}: {e}"))?;
        // Only consider complete lines: a writer mid-append leaves a
        // partial tail that would fail the parser.
        let complete = match buf.rfind('\n') {
            Some(end) => &buf[..=end],
            None => "",
        };
        if complete.len() != seen_bytes {
            seen_bytes = complete.len();
            let segments = dcat_obs::frames::parse_stream(complete)?;
            let total: u64 = segments.iter().map(|s| s.frames.len() as u64).sum();
            if total > shown {
                if opts.color {
                    // Redraw just the latest frame in place.
                    if let Some(f) = segments.iter().rev().find_map(|s| s.frames.last()) {
                        print!("{CLEAR_SCREEN}{}", render_frame(f, opts));
                    }
                } else {
                    // Headless: append every frame not yet printed, in order.
                    let mut index = 0u64;
                    for seg in &segments {
                        for f in &seg.frames {
                            if index >= shown {
                                print!("{}\n", render_frame(f, opts));
                            }
                            index += 1;
                        }
                    }
                }
                shown = total;
            }
        }
        if let Some(max) = args.max_ticks {
            if shown >= max {
                return Ok(());
            }
        }
        std::thread::sleep(args.interval);
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let opts = if args.headless {
        RenderOptions::headless()
    } else {
        RenderOptions::interactive()
    };
    let run = match (&args.replay, &args.follow) {
        (Some(path), _) => replay(path, &opts),
        (_, Some(path)) => follow(path, &args, &opts),
        _ => unreachable!("parse_args enforces one mode"),
    };
    match run {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("dcat-top: {msg}");
            ExitCode::FAILURE
        }
    }
}
