//! dcat-top: terminal rendering for the `dcat-frames/v1` stream.
//!
//! The `dcat-top` binary is the operator's live view of a dCat run: it
//! follows the frame stream a daemon writes (`dcatd --frames-out`) or
//! replays a recorded stream / flight dump after the fact. Everything
//! here renders to `String`s — the binary decides where the bytes go —
//! so the headless output can be byte-diffed in CI against a golden
//! snapshot, and the interactive mode is just the same table with ANSI
//! color and a screen clear in front.
//!
//! Parsing and validation live in [`dcat_obs::frames`]; this crate never
//! re-interprets the schema, so a stream `dcat-top` can render is exactly
//! a stream `obs-dump --check` accepts.

use dcat_obs::frames::{parse_flight, parse_stream, DomainFrame, Frame};

/// How to paint the dashboard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RenderOptions {
    /// ANSI color and emphasis. Off in `--headless` mode, where output
    /// must be byte-stable for CI diffing.
    pub color: bool,
}

impl RenderOptions {
    /// Plain-text mode: no escape codes anywhere in the output.
    pub fn headless() -> Self {
        RenderOptions { color: false }
    }

    /// Interactive mode: color by state class, highlight anomalies.
    pub fn interactive() -> Self {
        RenderOptions { color: true }
    }
}

/// SGR-paint `s` when color is on; identity otherwise. Padding happens
/// before painting so escape codes never disturb column widths.
fn paint(s: &str, code: &str, color: bool) -> String {
    if color {
        format!("\x1b[{code}m{s}\x1b[0m")
    } else {
        s.to_string()
    }
}

/// Color code for a state-machine class (the Figure-6 palette).
fn class_code(class: &str) -> &'static str {
    match class {
        "Keeper" => "32",    // green: holding its baseline
        "Donor" => "36",     // cyan: giving ways back
        "Receiver" => "33",  // yellow: growing
        "Streaming" => "35", // magenta: capped
        "Reclaim" => "31",   // red: under its contract
        _ => "2",            // dim: Unknown
    }
}

fn fmt_opt_f64(v: Option<f64>, prec: usize) -> String {
    match v {
        Some(x) if x.is_finite() => format!("{x:.prec$}"),
        _ => "-".to_string(),
    }
}

fn fmt_cbm(cbm: Option<u64>) -> String {
    cbm.map_or_else(|| "-".to_string(), |c| format!("0x{c:x}"))
}

fn domain_flags(d: &DomainFrame) -> String {
    let mut flags = Vec::new();
    if d.quarantined {
        flags.push("QUAR");
    }
    if d.held {
        flags.push("HELD");
    }
    if flags.is_empty() {
        "-".to_string()
    } else {
        flags.join("+")
    }
}

/// Occupancy bar: one `#` per way granted (the at-a-glance column).
fn ways_bar(ways: u32) -> String {
    "#".repeat(ways.min(32) as usize)
}

/// The one-line per-tick summary above the domain table: tick, policy,
/// COS pressure, allocation churn, event count, the policy-specific
/// extension, and the degraded flag when set.
fn status_line(f: &Frame, opts: &RenderOptions) -> String {
    let mut line = format!(
        "tick {:>4}  policy {}  cos {}  ways_moved {}  events {}",
        f.tick, f.policy, f.ext.cos, f.ways_moved, f.events
    );
    if let Some(l) = f.ext.lfoc {
        line.push_str(&format!(
            "  lfoc[clusters={} insensitive={}]",
            l.clusters, l.insensitive
        ));
    }
    if let Some(m) = f.ext.memshare {
        line.push_str(&format!(
            "  memshare[lent={} credit={}..{}]",
            m.lent, m.credit_min, m.credit_max
        ));
    }
    if f.degraded {
        let reason = f.reason.as_deref().unwrap_or("unknown");
        line.push_str("  ");
        line.push_str(&paint(&format!("DEGRADED({reason})"), "1;31", opts.color));
    }
    line
}

/// Renders one frame as the full dashboard table (status line, column
/// header, one row per domain). Pure: the same frame always renders the
/// same bytes for the same options — the property the CI golden diff and
/// the `--jobs` byte-identity regression lean on.
pub fn render_frame(f: &Frame, opts: &RenderOptions) -> String {
    let name_w = f
        .domains
        .iter()
        .map(|d| d.name.len())
        .chain(std::iter::once("DOMAIN".len()))
        .max()
        .unwrap_or(6);
    let mut out = status_line(f, opts);
    out.push('\n');
    out.push_str(&paint(
        &format!(
            "{:<name_w$}  {:<9}  {:>4}  {:>8}  {:>7}  {:>6}  {:>6}  {:<9}  OCCUPANCY",
            "DOMAIN", "CLASS", "WAYS", "CBM", "IPC", "NORM", "MISS%", "FLAGS"
        ),
        "4",
        opts.color,
    ));
    out.push('\n');
    for d in &f.domains {
        let class = paint(&format!("{:<9}", d.class), class_code(&d.class), opts.color);
        let flags = domain_flags(d);
        let flags = if d.quarantined {
            paint(&format!("{flags:<9}"), "1;31", opts.color)
        } else {
            format!("{flags:<9}")
        };
        out.push_str(&format!(
            "{:<name_w$}  {class}  {:>4}  {:>8}  {:>7}  {:>6}  {:>6}  {flags}  {}\n",
            d.name,
            d.ways,
            fmt_cbm(d.cbm),
            fmt_opt_f64(Some(d.ipc), 3),
            fmt_opt_f64(d.norm_ipc, 2),
            fmt_opt_f64(Some(d.miss_rate * 100.0), 2),
            ways_bar(d.ways),
        ));
    }
    out
}

/// Renders a whole `dcat-frames/v1` stream, segment by segment, frame by
/// frame — the `--replay` path. Returns the validator's error verbatim on
/// a malformed stream.
///
/// # Errors
///
/// Anything [`parse_stream`] rejects: headerless streams, unknown schema
/// versions, non-monotonic ticks, unknown state classes, degraded frames
/// without a reason.
pub fn render_stream(text: &str, opts: &RenderOptions) -> Result<String, String> {
    let segments = parse_stream(text)?;
    let mut out = String::new();
    for seg in &segments {
        out.push_str(&paint(
            &format!("=== {} ({} frames) ===", seg.source, seg.frames.len()),
            "1",
            opts.color,
        ));
        out.push('\n');
        for f in &seg.frames {
            out.push_str(&render_frame(f, opts));
            out.push('\n');
        }
    }
    Ok(out)
}

/// Renders a `dcat-flight/v1` recorder dump as a per-tick event timeline —
/// the `--replay` fallback for anomaly-window dumps, which carry spans and
/// events rather than full frames.
///
/// # Errors
///
/// Anything [`parse_flight`] rejects, including headerless pre-v1 dumps.
pub fn render_flight(text: &str, opts: &RenderOptions) -> Result<String, String> {
    let ticks = parse_flight(text)?;
    let mut out = String::new();
    out.push_str(&paint(
        &format!("=== flight recorder ({} ticks) ===", ticks.len()),
        "1",
        opts.color,
    ));
    out.push('\n');
    for t in &ticks {
        let mut line = format!("tick {:>4}  spans {:>2}", t.tick, t.spans);
        if t.degraded {
            line.push_str("  ");
            line.push_str(&paint("DEGRADED", "1;31", opts.color));
        }
        if !t.events.is_empty() {
            line.push_str("  events: ");
            line.push_str(&t.events.join(", "));
        }
        out.push_str(&line);
        out.push('\n');
    }
    Ok(out)
}

/// Classifies replay input by its first non-empty line, mirroring
/// `obs-dump`'s sniffing: a frame stream, a flight dump, or neither.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamKind {
    /// `dcat-frames/v1` (a `frames_header` / `frame` record first).
    Frames,
    /// `dcat-flight/v1` (a `flight_header` record first).
    Flight,
    /// Anything else — rejected with the validators' errors.
    Unknown,
}

/// Sniffs which renderer applies to `text`.
pub fn classify(text: &str) -> StreamKind {
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line.contains("\"record\":\"frames_header\"") || line.contains("\"record\":\"frame\"") {
            return StreamKind::Frames;
        }
        if line.contains("\"record\":\"flight_header\"") {
            return StreamKind::Flight;
        }
        return StreamKind::Unknown;
    }
    StreamKind::Unknown
}

/// Renders replay input of either supported kind.
///
/// # Errors
///
/// Unknown input kinds and anything the schema validators reject.
pub fn render_replay(text: &str, opts: &RenderOptions) -> Result<String, String> {
    match classify(text) {
        StreamKind::Frames => render_stream(text, opts),
        StreamKind::Flight => render_flight(text, opts),
        StreamKind::Unknown => {
            Err("input is neither a dcat-frames/v1 stream nor a dcat-flight/v1 dump".to_string())
        }
    }
}

/// ANSI sequence the live mode prints before each redraw: cursor home +
/// clear to end of screen (not the scrollback-destroying full reset).
pub const CLEAR_SCREEN: &str = "\x1b[H\x1b[J";

#[cfg(test)]
mod tests {
    use super::*;
    use dcat_obs::frames::{FrameWriter, LfocExt, MemshareExt, PolicyExt};

    fn sample_frame() -> Frame {
        Frame {
            tick: 7,
            policy: "dcat".to_string(),
            degraded: true,
            reason: Some("telemetry".to_string()),
            ways_moved: 3,
            events: 2,
            ext: PolicyExt {
                cos: 2,
                lfoc: Some(LfocExt {
                    clusters: 2,
                    insensitive: 1,
                }),
                memshare: Some(MemshareExt {
                    lent: 4,
                    credit_min: -7,
                    credit_max: 12,
                }),
            },
            domains: vec![
                DomainFrame {
                    name: "tenant".to_string(),
                    class: "Receiver".to_string(),
                    ways: 5,
                    cbm: Some(0x1f),
                    ipc: 1.234,
                    norm_ipc: Some(0.98),
                    miss_rate: 0.0321,
                    baseline_ipc: Some(1.26),
                    quarantined: true,
                    held: true,
                },
                DomainFrame {
                    name: "lookbusy-0".to_string(),
                    class: "Donor".to_string(),
                    ways: 1,
                    cbm: None,
                    ipc: 0.5,
                    norm_ipc: None,
                    miss_rate: f64::NAN,
                    baseline_ipc: None,
                    quarantined: false,
                    held: false,
                },
            ],
        }
    }

    #[test]
    fn headless_render_is_plain_and_complete() {
        let out = render_frame(&sample_frame(), &RenderOptions::headless());
        assert!(!out.contains('\x1b'), "headless output has no ANSI codes");
        assert!(out.contains("tick    7"));
        assert!(out.contains("DEGRADED(telemetry)"));
        assert!(out.contains("lfoc[clusters=2 insensitive=1]"));
        assert!(out.contains("memshare[lent=4 credit=-7..12]"));
        assert!(out.contains("Receiver"));
        assert!(out.contains("0x1f"));
        assert!(out.contains("QUAR+HELD"));
        assert!(out.contains("#####"), "occupancy bar tracks ways");
        assert!(out.contains("1.234"));
        // NaN miss rate renders as the absent marker, not "NaN".
        assert!(!out.contains("NaN"));
    }

    #[test]
    fn interactive_render_paints_and_strips_to_headless() {
        let color = render_frame(&sample_frame(), &RenderOptions::interactive());
        assert!(color.contains("\x1b[33m"), "Receiver row is painted");
        assert!(color.contains("\x1b[1;31m"), "anomalies are highlighted");
        // Stripping the escapes recovers the headless bytes exactly —
        // color is presentation-only.
        let mut stripped = String::new();
        let mut rest = color.as_str();
        while let Some(start) = rest.find('\x1b') {
            stripped.push_str(&rest[..start]);
            let tail = &rest[start..];
            let end = tail.find('m').expect("escape terminates") + 1;
            rest = &tail[end..];
        }
        stripped.push_str(rest);
        assert_eq!(
            stripped,
            render_frame(&sample_frame(), &RenderOptions::headless())
        );
    }

    #[test]
    fn replay_renders_streams_and_flight_dumps() {
        let mut w = FrameWriter::new("scenario:dcat");
        let mut f = sample_frame();
        f.degraded = false;
        f.reason = None;
        // The stream validator requires numeric miss rates; the NaN in the
        // fixture exists to exercise the renderer, not the encoder.
        f.domains[1].miss_rate = 0.0;
        w.push(f);
        let text = w.into_string();
        assert_eq!(classify(&text), StreamKind::Frames);
        let out = render_replay(&text, &RenderOptions::headless()).expect("stream renders");
        assert!(out.contains("=== scenario:dcat (1 frames) ==="));
        assert!(out.contains("tenant"));

        let flight = "{\"record\":\"flight_header\",\"schema\":\"dcat-flight/v1\",\"capacity\":4,\"retained\":1,\"dropped\":0}\n\
                      {\"tick\":3,\"degraded\":true,\"spans\":[{}],\"events\":[{\"event\":\"domain_quarantined\",\"domain\":\"vm3\"}]}\n";
        assert_eq!(classify(flight), StreamKind::Flight);
        let out = render_replay(flight, &RenderOptions::headless()).expect("flight renders");
        assert!(out.contains("=== flight recorder (1 ticks) ==="));
        assert!(out.contains("DEGRADED"));
        assert!(out.contains("domain_quarantined(vm3)"));

        assert_eq!(classify("{\"record\":\"metric\"}"), StreamKind::Unknown);
        assert!(render_replay("{\"record\":\"metric\"}", &RenderOptions::headless()).is_err());
    }

    #[test]
    fn malformed_streams_surface_the_validator_error() {
        let headerless = "{\"record\":\"frame\",\"tick\":1}";
        let err = render_replay(headerless, &RenderOptions::headless()).unwrap_err();
        assert!(err.contains("frames_header"), "got: {err}");
    }
}
