//! Golden headless-render snapshot for fig07's frame stream.
//!
//! This pins the whole export-to-dashboard path end to end: the fig07
//! lifecycle run produces a `dcat-frames/v1` stream (two segments, panel
//! a then panel b), and `dcat-top`'s headless renderer turns it into the
//! exact bytes CI diffs (`ci.sh` replays the same stream through the
//! `dcat-top --headless` binary). Everything upstream is logical-clock
//! deterministic, so any diff means either the controller's observable
//! decisions or the dashboard's layout changed.
//!
//! To regenerate after an intentional change:
//!
//! ```sh
//! DCAT_BLESS=1 cargo test -p dcat-top --test golden_headless
//! ```

use std::path::PathBuf;

use dcat_bench::experiments::fig07_lifecycle;
use dcat_bench::report;
use dcat_top::{render_replay, RenderOptions};

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("DCAT_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir has a parent"))
            .expect("create golden dir");
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden {} ({e}); run with DCAT_BLESS=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        actual,
        expected,
        "headless render diverged from {}; if the change is intentional, \
         re-bless with DCAT_BLESS=1",
        path.display()
    );
}

#[test]
fn fig07_headless_render_matches_golden() {
    let ((_lifecycle, frames), _text, _snap) =
        report::capture_obs(|| fig07_lifecycle::run_with_frames(true));
    // The stream CI replays must validate before it renders.
    let summary = dcat_obs::check_frames(&frames).expect("fig07 frames validate");
    assert_eq!(summary.segments, 2, "panel a and panel b segments");
    let rendered = render_replay(&frames, &RenderOptions::headless()).expect("stream renders");
    assert!(
        !rendered.contains('\x1b'),
        "headless bytes must carry no ANSI escapes"
    );
    check_golden("fig07_headless.txt", &rendered);
}
