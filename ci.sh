#!/usr/bin/env sh
# Offline CI gate. Everything here runs without network access: the
# workspace has no external dependencies (see "Hermetic builds" in
# README.md), so --offline is load-bearing, not an optimization.
set -eu

cd "$(dirname "$0")"

echo "==> build (release)"
cargo build --release --offline

echo "==> tests"
cargo test -q --offline

echo "==> lint gate (fmt, clippy, source scans)"
cargo run -q -p xtask --offline -- lint

echo "==> lint gate flags a seeded banned-pattern fixture (one per pass family)"
mkdir -p target
cat > target/lint-fixture.rs <<'FIXTURE'
fn bad() {
    let x = f.read().unwrap();
    let m = Cbm(a.0 & b.0);
    if ipc == 0.0 { }
    let h = std::thread::spawn(|| ());
    let t = std::fs::read_to_string(&p)?;
    let mut counts: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
    for (k, v) in counts.iter() { use_it(k, v); }
    let t0 = std::time::Instant::now();
    let truncated = big_count as u32;
    let first = fields[0];
    println!("debug {x}");
}
FIXTURE
if cargo run -q -p xtask --offline -- scan target/lint-fixture.rs; then
    echo "ERROR: lint scan passed a fixture seeded with banned patterns" >&2
    exit 1
fi

echo "==> interprocedural passes flag seeded laundering the token engine alone misses"
cat > target/lint-interproc-helper.rs <<'FIXTURE'
use std::collections::HashMap;

// The only HashMap evidence lives in this file; the sibling fixture
// that iterates the returned map never names the type.
fn build_index() -> HashMap<String, u64> {
    let mut m = HashMap::new();
    m.insert("k".to_string(), 1);
    m
}
FIXTURE
cat > target/lint-interproc-fixture.rs <<'FIXTURE'
// DL012: the HashMap type only arrives through a cross-file call
// return; the token-level DL006 pass cannot type `m` here.
fn drain() -> u64 {
    let m = build_index();
    let mut sum = 0;
    for v in m.values() {
        sum += v;
    }
    sum
}

// DL013: integer division by a variable one call from the entry; no
// token pass covers divide-by-zero at all.
fn share(total: u64, groups: u64) -> u64 {
    total / groups
}

// DL014: way counts and byte counts added together type-check fine;
// only unit inference from the names catches the mix.
fn pressure(total_ways: u32, dirty_bytes: u32) -> u32 {
    total_ways + dirty_bytes
}

fn entry() -> u64 {
    let a = drain();
    let b = share(a, 3);
    let _c = pressure(4, 4096);
    a + b
}
FIXTURE
cat > target/lint-flow-fixture.rs <<'FIXTURE'
// DL015: a laundered `&mut` capture handed to a Pool::map worker; the
// extra binding hides the borrow from every token pass — only the
// def-use chain connects `sink` back to `totals`.
pub struct Pool;
impl Pool {
    pub fn map(&self, items: Vec<u64>, f: impl Fn(usize, u64) -> u64) -> Vec<u64> {
        items.into_iter().enumerate().map(|(i, x)| f(i, x)).collect()
    }
}

fn fan_out(pool: &Pool) -> u64 {
    let mut totals = 0u64;
    let sink = &mut totals;
    let out = pool.map(vec![1, 2, 3], |_i, x| { *sink += x; x });
    let total: u64 = out.iter().copied().sum();
    totals + total
}

// DL017: an I/O-classified Result parked in a binding and dropped two
// statements later; there is no unwrap/expect text anywhere, so the
// discard is invisible without value tracking.
pub struct ResctrlError;

fn write_mask(mask: u64) -> Result<u64, ResctrlError> {
    Ok(mask)
}

fn epoch_step(mask: u64) -> u64 {
    let applied = write_mask(mask);
    let _ = applied;
    mask
}
FIXTURE
if cargo run -q -p dcat-lint --offline -- target/lint-interproc-fixture.rs \
    target/lint-interproc-helper.rs target/lint-flow-fixture.rs; then
    echo "ERROR: interprocedural passes missed the seeded laundering fixture" >&2
    exit 1
fi
cargo run -q -p dcat-lint --offline -- --json target/lint-interproc-fixture.rs \
    target/lint-interproc-helper.rs target/lint-flow-fixture.rs \
    > target/lint-interproc-report.json || true
if grep -o '"code":"DL0[0-9][0-9]"' target/lint-interproc-report.json | grep -qv 'DL01[2-7]'; then
    echo "ERROR: fixture tripped a token-level pass; it no longer proves the interprocedural value-add" >&2
    exit 1
fi
for code in DL012 DL013 DL014 DL015 DL017; do
    if ! grep -q "\"code\":\"$code\"" target/lint-interproc-report.json; then
        echo "ERROR: seeded $code laundering was not caught" >&2
        exit 1
    fi
done

echo "==> lint JSON report against the checked-in baseline"
cargo run -q -p dcat-lint --offline -- --json --baseline lint-baseline.txt \
    > target/lint-report.json

echo "==> determinism regression + golden decision traces + golden metrics"
cargo test -q --release -p dcat-bench --offline --test determinism --test golden_traces \
    --test golden_metrics

echo "==> daemon end-to-end (fixture resctrl tree + scripted telemetry)"
cargo test -q -p dcat --offline --test daemon_e2e

echo "==> daemon fault tolerance (scripted fault schedule, degraded ticks)"
cargo test -q -p dcat --offline --test daemon_faults

echo "==> all experiments: serial vs parallel wall-clock and byte-identity"
t0=$(date +%s)
cargo run -q --release -p dcat-bench --offline --bin all_experiments -- --fast --jobs 1 \
    > target/all_experiments.jobs1.txt
t1=$(date +%s)
cargo run -q --release -p dcat-bench --offline --bin all_experiments -- --fast --jobs 2 \
    > target/all_experiments.jobs2.txt
t2=$(date +%s)
echo "all_experiments --fast wall-clock: jobs=1 $((t1 - t0))s, jobs=2 $((t2 - t1))s"
if ! cmp -s target/all_experiments.jobs1.txt target/all_experiments.jobs2.txt; then
    echo "ERROR: all_experiments output differs between --jobs 1 and --jobs 2" >&2
    exit 1
fi

echo "==> fleet smoke: 1000 tenants, sampled sets, byte-identity across jobs widths"
# The cluster scenario layer fans hosts over the worker pool; the smoke
# proves a 1000-tenant sampled run is fast AND byte-identical whether
# hosts step on two workers or four.
cargo run -q --release -p dcat-bench --offline --bin fleet_scale -- --fast \
    --tenants 1000 --sample-sets 8 --jobs 2 > target/fleet_smoke.jobs2.txt
cargo run -q --release -p dcat-bench --offline --bin fleet_scale -- --fast \
    --tenants 1000 --sample-sets 8 --jobs 4 > target/fleet_smoke.jobs4.txt
if ! cmp -s target/fleet_smoke.jobs2.txt target/fleet_smoke.jobs4.txt; then
    echo "ERROR: fleet_scale output differs between --jobs 2 and --jobs 4" >&2
    exit 1
fi

echo "==> metrics + frame-stream export: fig07 with --metrics-out/--frames-out, validated by obs-dump"
cargo run -q --release -p dcat-bench --offline --bin fig07_lifecycle -- --fast \
    --metrics-out target/metrics.prom --frames-out target/frames.jsonl \
    > target/fig07_lifecycle.txt
cargo run -q --release -p dcat-obs --offline --bin obs-dump -- --check target/metrics.prom
cargo run -q --release -p dcat-obs --offline --bin obs-dump -- --check target/frames.jsonl

echo "==> dcat-top replay: headless render of the fig07 stream vs the blessed golden"
# The same stream obs-dump just validated must render byte-identically to
# the golden the dcat-top crate's tests bless (DCAT_BLESS=1 re-blesses).
cargo run -q --release -p dcat-top --offline --bin dcat-top -- \
    --replay target/frames.jsonl --headless > target/fig07_headless.txt
if ! cmp -s target/fig07_headless.txt crates/top/tests/golden/fig07_headless.txt; then
    echo "ERROR: dcat-top --headless render differs from crates/top/tests/golden/fig07_headless.txt" >&2
    diff target/fig07_headless.txt crates/top/tests/golden/fig07_headless.txt | head -20 >&2 || true
    exit 1
fi

echo "==> DL011 exemption boundary: the dcat-top renderer lib is gated, its binary is not"
# A scoped gate over a miniature tree holding the SAME println! at both
# top-crate paths: the library must be flagged, the /bin/ path must not —
# proving the print-discipline boundary rather than assuming it.
mkdir -p target/ci-top-boundary/crates/top/src/bin target/ci-top-boundary/crates/dcat/src
printf 'pub fn render() {\n    println!("tick");\n}\n' \
    > target/ci-top-boundary/crates/top/src/lib.rs
cp target/ci-top-boundary/crates/top/src/lib.rs \
    target/ci-top-boundary/crates/top/src/bin/dcat_top.rs
# Stubs for the inputs the scoped gate always reads (DL010 spec drift).
: > target/ci-top-boundary/crates/dcat/src/transitions.rs
: > target/ci-top-boundary/DESIGN.md
cargo run -q --release -p dcat-lint --offline -- --json --root target/ci-top-boundary \
    > target/ci-top-boundary-report.json || true
if ! grep -q '"code":"DL011","path":"crates/top/src/lib.rs"' target/ci-top-boundary-report.json; then
    echo "ERROR: DL011 did not flag a println! seeded into crates/top/src/lib.rs" >&2
    exit 1
fi
if grep -q '"path":"crates/top/src/bin/dcat_top.rs"' target/ci-top-boundary-report.json; then
    echo "ERROR: the dcat-top binary path lost its stdio exemption" >&2
    exit 1
fi

echo "==> perfbench self-test (fake clock, schema validation, no writes)"
cargo run -q --release -p dcat-bench --offline --bin dcat-perfbench -- --check

echo "==> perfbench regression gate vs tracked BENCH_*.json trajectory"
# Re-measures both suites against the wall clock, writes the fresh
# results to target/bench/, and gates each case's normalized score
# against the blessed baselines at the repo root (tolerance comes from
# each baseline's header). The micro suite's `lint_full_workspace`
# case also enforces the 10 s full-workspace lint budget via its
# `lint_budget_headroom >= 1.0` floor, replacing the old one-off
# timer. After an intentional perf change, re-bless
# with: DCAT_BLESS=1 cargo run --release -p dcat-bench --bin dcat-perfbench
cargo run -q --release -p dcat-bench --offline --bin dcat-perfbench -- \
    --out-dir target/bench --baseline-dir .

echo "==> model checker (bounded exhaustive)"
cargo run -q --release -p dcat-verify --offline

echo "CI gate passed"
