#!/usr/bin/env sh
# Offline CI gate. Everything here runs without network access: the
# workspace has no external dependencies (see "Hermetic builds" in
# README.md), so --offline is load-bearing, not an optimization.
set -eu

cd "$(dirname "$0")"

echo "==> build (release)"
cargo build --release --offline

echo "==> tests"
cargo test -q --offline

echo "==> lint gate (fmt, clippy, source scans)"
cargo run -q -p xtask --offline -- lint

echo "==> lint gate flags a seeded banned-pattern fixture"
mkdir -p target
printf 'fn bad() {\n    let x = f.read().unwrap();\n    let m = Cbm(a.0 & b.0);\n    if ipc == 0.0 { }\n}\n' \
    > target/lint-fixture.rs
if cargo run -q -p xtask --offline -- scan target/lint-fixture.rs; then
    echo "ERROR: lint scan passed a fixture seeded with banned patterns" >&2
    exit 1
fi

echo "==> model checker (bounded exhaustive)"
cargo run -q --release -p dcat-verify --offline

echo "CI gate passed"
