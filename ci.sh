#!/usr/bin/env sh
# Offline CI gate. Everything here runs without network access: the
# workspace has no external dependencies (see "Hermetic builds" in
# README.md), so --offline is load-bearing, not an optimization.
set -eu

cd "$(dirname "$0")"

echo "==> build (release)"
cargo build --release --offline

echo "==> tests"
cargo test -q --offline

echo "==> lint gate (fmt, clippy, source scans)"
cargo run -q -p xtask --offline -- lint

echo "==> lint gate flags a seeded banned-pattern fixture (one per pass family)"
mkdir -p target
cat > target/lint-fixture.rs <<'FIXTURE'
fn bad() {
    let x = f.read().unwrap();
    let m = Cbm(a.0 & b.0);
    if ipc == 0.0 { }
    let h = std::thread::spawn(|| ());
    let t = std::fs::read_to_string(&p)?;
    let mut counts: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
    for (k, v) in counts.iter() { use_it(k, v); }
    let t0 = std::time::Instant::now();
    let truncated = big_count as u32;
    let first = fields[0];
    println!("debug {x}");
}
FIXTURE
if cargo run -q -p xtask --offline -- scan target/lint-fixture.rs; then
    echo "ERROR: lint scan passed a fixture seeded with banned patterns" >&2
    exit 1
fi

echo "==> lint JSON report against the checked-in baseline"
cargo run -q -p dcat-lint --offline -- --json --baseline lint-baseline.txt \
    > target/lint-report.json

echo "==> determinism regression + golden decision traces + golden metrics"
cargo test -q --release -p dcat-bench --offline --test determinism --test golden_traces \
    --test golden_metrics

echo "==> daemon end-to-end (fixture resctrl tree + scripted telemetry)"
cargo test -q -p dcat --offline --test daemon_e2e

echo "==> daemon fault tolerance (scripted fault schedule, degraded ticks)"
cargo test -q -p dcat --offline --test daemon_faults

echo "==> all experiments: serial vs parallel wall-clock and byte-identity"
t0=$(date +%s)
cargo run -q --release -p dcat-bench --offline --bin all_experiments -- --fast --jobs 1 \
    > target/all_experiments.jobs1.txt
t1=$(date +%s)
cargo run -q --release -p dcat-bench --offline --bin all_experiments -- --fast --jobs 2 \
    > target/all_experiments.jobs2.txt
t2=$(date +%s)
echo "all_experiments --fast wall-clock: jobs=1 $((t1 - t0))s, jobs=2 $((t2 - t1))s"
if ! cmp -s target/all_experiments.jobs1.txt target/all_experiments.jobs2.txt; then
    echo "ERROR: all_experiments output differs between --jobs 1 and --jobs 2" >&2
    exit 1
fi

echo "==> metrics export: one experiment with --metrics-out, validated by obs-dump"
cargo run -q --release -p dcat-bench --offline --bin fig07_lifecycle -- --fast \
    --metrics-out target/metrics.prom > target/fig07_lifecycle.txt
cargo run -q --release -p dcat-obs --offline --bin obs-dump -- --check target/metrics.prom

echo "==> model checker (bounded exhaustive)"
cargo run -q --release -p dcat-verify --offline

echo "CI gate passed"
